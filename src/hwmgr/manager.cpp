#include "hwmgr/manager.hpp"

#include <algorithm>

#include "mem/address_map.hpp"
#include "pl/pcap.hpp"
#include "pl/prr_controller.hpp"

namespace minova::hwmgr {

using nova::GuestContext;
using nova::HcStatus;
using nova::HwTaskRequest;
using nova::PdId;

ManagerService::ManagerService(nova::Kernel& kernel,
                               const ManagerCostModel& costs)
    : kernel_(kernel),
      costs_(costs),
      prr_table_(kernel.platform().prr_controller().num_prrs()),
      ledger_(kernel.platform().prr_controller().num_prrs()),
      code_(nova::kManagerBase + 0x10000 + 0x2c40, 64 * kKiB) {
  auto& reg = kernel_.platform().stats();
  c_sw_grants_ = reg.handle("hwmgr.sw_grants");
  c_reconfig_success_ = reg.handle("hwmgr.reconfig_success");
  c_pcap_failures_ = reg.handle("hwmgr.pcap_failures");
  c_retries_ = reg.handle("hwmgr.retries");
  c_fallbacks_ = reg.handle("hwmgr.fallbacks");
  c_quarantines_ = reg.handle("hwmgr.quarantines");
  c_unquarantines_ = reg.handle("hwmgr.unquarantines");
  c_preemptions_ = reg.handle("hwmgr.preemptions");
  c_resumes_ = reg.handle("hwmgr.resumes");
  c_cache_hits_ = reg.handle("hwmgr.cache_hits");
  c_cache_misses_ = reg.handle("hwmgr.cache_misses");
  c_cache_evicts_ = reg.handle("hwmgr.cache_evicts");
  rg_handle_ = code_.place(768);
  rg_select_ = code_.place(384);
  rg_consistency_ = code_.place(512);
  rg_pcap_ = code_.place(320);
  rg_release_ = code_.place(384);
}

ManagerService::~ManagerService() {
  // The PCAP outlives this service (platform-owned): drop the observer so
  // completions after our death don't call into freed memory.
  if (pd_ != nullptr) kernel_.platform().pcap().set_completion_observer({});
}

nova::ProtectionDomain& ManagerService::install(u32 priority) {
  pd_ = &kernel_.create_manager("hw-task-manager", priority, *this);
  kernel_.platform().pcap().set_completion_observer(
      [this](u32 prr, u32 task, bool ok) { on_pcap_complete(prr, task, ok); });
  return *pd_;
}

void ManagerService::touch_task_table(GuestContext& ctx, hwtask::TaskId task) {
  // 8-word table row: bitstream addr/size, latency, PRR list (Fig. 7).
  const vaddr_t row = kTaskTableVa + (task % 64) * 32;
  for (u32 w = 0; w < 8; ++w) (void)ctx.read32(row + w * 4);
}

void ManagerService::touch_prr_table(GuestContext& ctx, u32 prr_idx,
                                     bool write) {
  const vaddr_t row = kPrrTableVa + prr_idx * 32;
  for (u32 w = 0; w < 8; ++w) {
    if (write)
      (void)ctx.write32(row + w * 4, 0);
    else
      (void)ctx.read32(row + w * 4);
  }
}

int ManagerService::select_prr(GuestContext& ctx,
                               const hwtask::TaskInfo& info, PdId requester,
                               bool& needs_reconfig,
                               bool& quarantine_blocked) {
  ctx.exec(rg_select_);
  const auto& prrctl = kernel_.platform().prr_controller();

  // Refresh the table's in-flight bits from the static logic first: a PRR
  // whose PCAP download has completed is available again.
  for (u32 prr : info.compatible_prrs)
    prr_table_[prr].reconfiguring = prrctl.prr(prr).reconfiguring;

  // First pass (kResidentFirst only): an idle compatible PRR already
  // configured with this task (no reconfiguration needed). Each candidate
  // is evaluated against its table row plus a live status read from the
  // static logic.
  auto& core = ctx.core();
  for (u32 prr : info.compatible_prrs) {
    touch_prr_table(ctx, prr, /*write=*/false);
    u32 status = 0;
    (void)kernel_.platform().bus().read32(
        prrctl.reg_group_pa(prr) + pl::kRegStatus, status);
    core.spend(core.caches().access_device());
    ctx.spend_insns(costs_.insns_select_per_prr);
    const auto& hw = prrctl.prr(prr);
    if (hw.busy || hw.reconfiguring) continue;
    if (prr_table_[prr].health == PrrHealth::kQuarantined) continue;
    if (policy_ == AllocPolicy::kResidentFirst &&
        prr_table_[prr].task == info.id && hw.loaded_task == info.id) {
      needs_reconfig = false;
      return int(prr);
    }
  }
  // Second pass: an idle compatible PRR per the configured policy; prefer
  // unowned regions, then reclaim from other clients. A region owned by
  // the requester itself is fine too.
  needs_reconfig = true;
  // With priorities on, a region owned by another client is a takeover
  // candidate only when that owner ranks strictly below the requester.
  const u32 req_prio =
      sched_.priorities ? client_priority(requester) : 0;
  // Preference order for resident-first/first-fit: a dark (never
  // configured) cheap region spreads tasks across the fabric and maximizes
  // later residency hits; then any cheap region; reclaiming from another
  // client is the last resort.
  int dark = -1, cheap_used = -1, reclaimable = -1, lru = -1;
  for (u32 prr : info.compatible_prrs) {
    const auto& hw = prrctl.prr(prr);
    if (hw.busy || hw.reconfiguring) continue;
    if (prr_table_[prr].health == PrrHealth::kQuarantined) {
      quarantine_blocked = true;
      continue;
    }
    const bool cheap = prr_table_[prr].client == nova::kInvalidPd ||
                       prr_table_[prr].client == requester;
    if (!cheap && sched_.priorities &&
        client_priority(prr_table_[prr].client) >= req_prio)
      continue;  // not preemptible: owner outranks (or ties) the requester
    if (cheap && hw.loaded_task == hwtask::kInvalidTask && dark < 0)
      dark = int(prr);
    else if (cheap && cheap_used < 0)
      cheap_used = int(prr);
    else if (!cheap && reclaimable < 0)
      reclaimable = int(prr);
    if (lru < 0 || prr_table_[prr].last_grant_seq <
                       prr_table_[u32(lru)].last_grant_seq)
      lru = int(prr);
  }
  if (policy_ == AllocPolicy::kLruRegion) return lru;
  if (dark >= 0) return dark;
  if (cheap_used >= 0) return cheap_used;
  return reclaimable;
}

void ManagerService::reclaim_from(GuestContext& ctx, u32 prr_idx) {
  ctx.exec(rg_consistency_);
  ctx.spend_insns(costs_.insns_consistency);
  PrrTableEntry& entry = prr_table_[prr_idx];
  nova::ProtectionDomain* old_client = kernel_.pd_by_id(entry.client);
  if (old_client == nullptr) return;
  ++stats_.reclaims;
  kernel_.platform().trace().emit(kernel_.platform().clock().now(),
                                  sim::TraceKind::kHwReclaim, prr_idx,
                                  entry.client);

  // Read the interface register group through the static logic (manager's
  // authority over the fabric) — 8 uncached device reads.
  auto& core = ctx.core();
  const auto& prrctl = kernel_.platform().prr_controller();
  std::array<u32, 8> regs{};
  for (u32 w = 0; w < 8; ++w) {
    u32 v = 0;
    (void)kernel_.platform().bus().read32(
        prrctl.reg_group_pa(prr_idx) + w * 4, v);
    regs[w] = v;
    core.spend(core.caches().access_device());
  }
  last_reclaim_regs_ = regs;

  // Save register contents + inconsistent flag into the old client's data
  // section (§IV.C / Fig. 5).
  std::array<u32, kConsistencyWords> record{};
  record[0] = kStateInconsistent;
  record[1] = entry.task;
  for (u32 w = 0; w < 8; ++w) record[2 + w] = regs[w];
  kernel_.svc_write_client_data(*pd_, entry.client,
                                consistency_offset(old_client->hw_data_size),
                                record);

  // Demap the interface page from the old client — but only when its VA
  // still points at *this* region (a later grant may have retargeted it).
  if (entry.client_iface_va != 0) {
    const auto key = std::make_pair(entry.client, entry.client_iface_va);
    auto it = iface_map_.find(key);
    if (it != iface_map_.end() && it->second == prr_idx) {
      kernel_.svc_unmap_from(*pd_, entry.client, entry.client_iface_va);
      iface_map_.erase(it);
    }
  }

  entry.client = nova::kInvalidPd;
  entry.client_iface_va = 0;
  ledger_[prr_idx] = LedgerEntry{};
}

// ---- priority preemption / wait queue (DESIGN.md §15) -----------------------

u32 ManagerService::client_priority(PdId client) const {
  auto it = prio_override_.find(client);
  if (it != prio_override_.end()) return it->second;
  nova::ProtectionDomain* pd = kernel_.pd_by_id(client);
  return pd != nullptr ? pd->priority() : 1u;
}

HcStatus ManagerService::set_client_priority(PdId client, u32 prio) {
  prio = std::clamp<u32>(prio, 1, 15);
  prio_override_[client] = prio;
  // Parked requests follow the new priority immediately.
  for (auto& w : wait_queue_)
    if (w.client == client) w.prio = prio;
  return HcStatus::kSuccess;
}

u32 ManagerService::effective_quota(PdId client) const {
  auto it = quota_override_.find(client);
  if (it != quota_override_.end()) return it->second;
  return sched_.default_quota;
}

u32 ManagerService::grants_in_use(PdId client) const {
  u32 n = 0;
  for (const auto& e : prr_table_)
    if (e.client == client) ++n;
  for (const auto& w : wait_queue_)
    if (w.client == client) ++n;
  return n;
}

u32 ManagerService::query_quota(PdId client) {
  return (effective_quota(client) << 16) | (grants_in_use(client) & 0xFFFFu);
}

bool ManagerService::reconfig_undecided(PdId client, u32 prr) const {
  auto it = pending_.find(client);
  return it != pending_.end() && it->second.prr == prr &&
         it->second.outcome == ReconfigOutcome::kInFlight;
}

void ManagerService::park_victim(PdId victim, hwtask::TaskId task,
                                 vaddr_t iface_va,
                                 const std::array<u32, 8>& regs) {
  // One preemption save per client (the data section holds one record): a
  // newer save supersedes an older parked resume, which degrades to a
  // from-scratch re-grant.
  save_outstanding_[victim] = SavedContext{task, regs};
  for (auto& w : wait_queue_)
    if (w.client == victim) w.resume = false;
  wait_queue_.push_back(WaitEntry{victim, task, iface_va,
                                  client_priority(victim), /*resume=*/true,
                                  ++wait_seq_});
  // Overwriting the pending record kills any backoff retry the victim had
  // in flight on another region — unbind that region first.
  abandon_stale_reconfig(victim, 0xFFFF'FFFFu);
  pending_[victim] = PendingReconfig{task, 0xFFFF'FFFFu, 0,
                                     ReconfigOutcome::kQueued};
}

void ManagerService::preempt_and_park(GuestContext& ctx, u32 prr_idx) {
  PrrTableEntry& entry = prr_table_[prr_idx];
  const PdId victim = entry.client;
  const hwtask::TaskId task = entry.task;
  const vaddr_t iface_va = entry.client_iface_va;
  const bool victim_live = kernel_.pd_by_id(victim) != nullptr;
  reclaim_from(ctx, prr_idx);  // §IV.C save + unbind, identical protocol
  if (!victim_live) return;
  ++stats_.preemptions;
  c_preemptions_.inc();
  park_victim(victim, task, iface_va, last_reclaim_regs_);
  log_.debug("client %u preempted off PRR%u (task %u), parked for resume",
             victim, prr_idx, task);
}

void ManagerService::preempt_phys(u32 prr_idx) {
  PrrTableEntry& entry = prr_table_[prr_idx];
  const PdId victim = entry.client;
  const hwtask::TaskId task = entry.task;
  const vaddr_t iface_va = entry.client_iface_va;
  nova::ProtectionDomain* old_client = kernel_.pd_by_id(victim);
  if (old_client == nullptr) {
    entry.client = nova::kInvalidPd;
    entry.client_iface_va = 0;
    ledger_[prr_idx] = LedgerEntry{};
    return;
  }
  ++stats_.reclaims;
  ++stats_.preemptions;
  c_preemptions_.inc();
  kernel_.platform().trace().emit(kernel_.platform().clock().now(),
                                  sim::TraceKind::kHwReclaim, prr_idx, victim);
  // Event-context save: read the register group over the physical bus (no
  // simulated charge, like the retry path's device programming).
  auto& plat = kernel_.platform();
  const auto& prrctl = plat.prr_controller();
  std::array<u32, 8> regs{};
  for (u32 w = 0; w < 8; ++w) {
    u32 v = 0;
    (void)plat.bus().read32(prrctl.reg_group_pa(prr_idx) + w * 4, v);
    regs[w] = v;
  }
  std::array<u32, kConsistencyWords> record{};
  record[0] = kStateInconsistent;
  record[1] = task;
  for (u32 w = 0; w < 8; ++w) record[2 + w] = regs[w];
  kernel_.svc_write_client_data(*pd_, victim,
                                consistency_offset(old_client->hw_data_size),
                                record);
  if (iface_va != 0) {
    const auto key = std::make_pair(victim, iface_va);
    auto it = iface_map_.find(key);
    if (it != iface_map_.end() && it->second == prr_idx) {
      kernel_.svc_unmap_from(*pd_, victim, iface_va);
      iface_map_.erase(it);
    }
  }
  entry.client = nova::kInvalidPd;
  entry.client_iface_va = 0;
  ledger_[prr_idx] = LedgerEntry{};
  park_victim(victim, task, iface_va, regs);
}

void ManagerService::enqueue_request(const HwTaskRequest& req) {
  wait_queue_.push_back(WaitEntry{req.client, req.task, req.iface_va,
                                  client_priority(req.client),
                                  /*resume=*/false, ++wait_seq_});
  // Queuing supersedes any in-flight reconfig record (and its retry) for
  // this client; a region waiting on that retry must not stay bound.
  abandon_stale_reconfig(req.client, 0xFFFF'FFFFu);
  pending_[req.client] = PendingReconfig{req.task, 0xFFFF'FFFFu, 0,
                                         ReconfigOutcome::kQueued};
  ++stats_.enqueued;
  if (sched_.prefetch && sched_.cache_capacity > 0) cache_prefetch(req.task);
}

void ManagerService::drop_wait_entry(PdId client, bool write_record) {
  std::erase_if(wait_queue_,
                [&](const WaitEntry& w) { return w.client == client; });
  auto it = save_outstanding_.find(client);
  if (it == save_outstanding_.end()) return;
  nova::ProtectionDomain* pd = kernel_.pd_by_id(client);
  if (write_record && pd != nullptr) {
    // The save is being abandoned, not resumed: the record must say
    // consistent again or the save/restore oracle would see a phantom save.
    const std::array<u32, 2> rec{kStateConsistent, it->second.task};
    kernel_.svc_write_client_data(*pd_, client,
                                  consistency_offset(pd->hw_data_size), rec);
  }
  save_outstanding_.erase(it);
}

void ManagerService::pump_wait_queue() {
  if (pumping_ || wait_queue_.empty()) return;
  pumping_ = true;
  // Snapshot the queue order (priority desc, then FIFO): regrants mutate
  // the queue (preemption parks new victims), so entries are re-located by
  // their stable sequence number and each is attempted once per pump.
  std::vector<std::pair<u32, u64>> order;
  order.reserve(wait_queue_.size());
  for (const auto& w : wait_queue_) order.emplace_back(w.prio, w.enq_seq);
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (const auto& [prio, seq] : order) {
    auto it = std::find_if(wait_queue_.begin(), wait_queue_.end(),
                           [&](const WaitEntry& w) { return w.enq_seq == seq; });
    if (it == wait_queue_.end()) continue;  // dropped meanwhile
    const WaitEntry w = *it;                // copy: regrant mutates the queue
    if (try_regrant(w))
      std::erase_if(wait_queue_,
                    [&](const WaitEntry& e) { return e.enq_seq == seq; });
  }
  pumping_ = false;
}

bool ManagerService::try_regrant(const WaitEntry& w) {
  nova::ProtectionDomain* client = kernel_.pd_by_id(w.client);
  if (client == nullptr) {  // died while parked: drop the entry
    save_outstanding_.erase(w.client);
    pending_.erase(w.client);
    return true;
  }
  const hwtask::TaskInfo* info =
      kernel_.platform().task_library().find(w.task);
  if (info == nullptr) return true;  // task vanished: drop
  auto& plat = kernel_.platform();
  auto& ctl = plat.prr_controller();

  // Region choice mirrors stage 2: resident first, then any free region,
  // then preempting a strictly lower-priority owner.
  int resident = -1, unowned = -1, preemptable = -1;
  for (u32 prr : info->compatible_prrs) {
    const auto& hw = ctl.prr(prr);
    const PrrTableEntry& e = prr_table_[prr];
    if (hw.busy || hw.reconfiguring) continue;
    if (e.health == PrrHealth::kQuarantined) continue;
    const bool unheld =
        e.client == nova::kInvalidPd || e.client == w.client;
    if (unheld && hw.loaded_task == w.task && resident < 0)
      resident = int(prr);
    else if (unheld && unowned < 0)
      unowned = int(prr);
    else if (!unheld && sched_.priorities &&
             client_priority(e.client) < w.prio && preemptable < 0)
      preemptable = int(prr);
  }
  const int chosen =
      resident >= 0 ? resident : (unowned >= 0 ? unowned : preemptable);
  if (chosen < 0) return false;  // still saturated: stay parked
  const u32 prr = u32(chosen);
  const bool needs_pcap = ctl.prr(prr).loaded_task != w.task;
  if (needs_pcap && plat.pcap().busy()) return false;  // port contended

  PrrTableEntry& entry = prr_table_[prr];
  if (entry.client != nova::kInvalidPd && entry.client != w.client)
    preempt_phys(prr);

  // Stage 3 (phys): map the interface page into the waiting client.
  const paddr_t reg_pa = ctl.reg_group_pa(prr);
  const auto key = std::make_pair(w.client, w.iface_va);
  auto mit = iface_map_.find(key);
  bool fresh_map = false;
  if (mit == iface_map_.end() || mit->second != prr) {
    if (kernel_.svc_map_into(*pd_, w.client, w.iface_va, reg_pa) !=
        HcStatus::kSuccess)
      return false;
    iface_map_[key] = prr;
    fresh_map = true;
  }

  // Stage 4 (phys): hwMMU window + PL IRQ straight at the device — event
  // contexts have no manager VA window (same as handle_client_destroyed).
  const u32 glob = mem::kPrrMaxRegions * mem::kPrrRegGroupStride;
  ctl.mmio_write(glob + pl::kGlobPrrSelect, prr);
  ctl.mmio_write(glob + pl::kGlobHwmmuBase, u32(client->hw_data_pa));
  ctl.mmio_write(glob + pl::kGlobHwmmuSize, client->hw_data_size);
  if (entry.irq_index == 0xFFFF'FFFFu) {
    ctl.mmio_write(glob + pl::kGlobIrqAlloc, 1);
    entry.irq_index = ctl.mmio_read(glob + pl::kGlobIrqAlloc);
  }
  if (entry.irq_index < mem::kNumPlIrqs)
    kernel_.svc_assign_pl_irq(*pd_, w.client,
                              mem::pl_irq_to_gic(entry.irq_index));

  // Resume-from-record: put the saved interface registers back before any
  // reload (load_task preserves the programmable registers).
  auto sit = save_outstanding_.find(w.client);
  const bool resume =
      w.resume && sit != save_outstanding_.end() && sit->second.task == w.task;
  if (resume) ctl.restore_registers(prr, sit->second.regs);

  // Stage 5 (phys): reconfigure unless the task is already in the fabric.
  if (needs_pcap) {
    kernel_.svc_set_pcap_owner(*pd_, w.client);
    if (!launch_pcap_phys(prr, w.task)) {
      // The port raced busy after the check: unwind the fresh mapping (the
      // table never records this grant) and stay parked. The queued pending
      // record survives — the client still polls as queued.
      if (fresh_map) {
        kernel_.svc_unmap_from(*pd_, w.client, w.iface_va);
        iface_map_.erase(key);
      }
      return false;
    }
    abandon_stale_reconfig(w.client, prr);
    pending_[w.client] =
        PendingReconfig{w.task, prr, 1, ReconfigOutcome::kInFlight};
    inflight_client_ = w.client;
    ++stats_.grants_with_reconfig;
  } else {
    abandon_stale_reconfig(w.client, prr);
    pending_.erase(w.client);
    ++stats_.grants_no_reconfig;
  }

  // The re-grant completes the preempt/resume round trip: record turns
  // consistent and the outstanding save is consumed.
  const std::array<u32, 2> ok_record{kStateConsistent, w.task};
  kernel_.svc_write_client_data(*pd_, w.client,
                                consistency_offset(client->hw_data_size),
                                ok_record);
  save_outstanding_.erase(w.client);
  if (resume) {
    ++stats_.resumes;
    c_resumes_.inc();
  }

  // Stage 6 (phys): table + ledger update.
  entry.client = w.client;
  entry.task = w.task;
  entry.client_iface_va = w.iface_va;
  entry.reconfiguring = needs_pcap;
  entry.last_grant_seq = ++grant_seq_;
  ledger_[prr] = LedgerEntry{w.client, w.task};
  ++stats_.wait_grants;
  plat.trace().emit(plat.clock().now(), sim::TraceKind::kHwGrant, w.task,
                    w.client);
  log_.debug("queued client %u granted PRR%u (task %u%s)", w.client, prr,
             w.task, resume ? ", resumed" : "");
  return true;
}

// ---- bitstream cache (DESIGN.md §15) ----------------------------------------

void ManagerService::cache_insert(hwtask::TaskId task, bool prefetched) {
  for (auto& e : cache_) {
    if (e.task != task) continue;
    e.stamp = ++cache_seq_;
    return;  // already staged
  }
  const auto bits = kernel_.find_bitstream(task);
  cache_.push_back(CacheEntry{task, bits.pa, bits.len, ++cache_seq_,
                              prefetched});
  while (cache_.size() > sched_.cache_capacity) {
    auto victim = std::min_element(
        cache_.begin(), cache_.end(),
        [](const CacheEntry& a, const CacheEntry& b) {
          return a.stamp < b.stamp;
        });
    log_.debug("bitstream cache evicts task %u", victim->task);
    cache_.erase(victim);
    ++stats_.cache_evictions;
    c_cache_evicts_.inc();
  }
}

void ManagerService::cache_prefetch(hwtask::TaskId task) {
  for (const auto& e : cache_)
    if (e.task == task) return;  // already hot
  cache_insert(task, /*prefetched=*/true);
  ++stats_.cache_prefetches;
}

u32 ManagerService::cache_transfer_len(hwtask::TaskId task) {
  const auto bits = kernel_.find_bitstream(task);
  for (auto& e : cache_) {
    if (e.task != task) continue;
    e.stamp = ++cache_seq_;
    ++stats_.cache_hits;
    c_cache_hits_.inc();
    return std::min(sched_.cache_hit_load_bytes, bits.len);
  }
  ++stats_.cache_misses;
  c_cache_misses_.inc();
  cache_insert(task, /*prefetched=*/false);
  return bits.len;
}

// ---- request path (Fig. 7) --------------------------------------------------

void ManagerService::program_hwmmu(GuestContext& ctx, u32 prr_idx,
                                   paddr_t base, u32 size) {
  const vaddr_t glob = nova::manager_pl_ctrl_va();
  ctx.spend_insns(costs_.insns_hwmmu);
  (void)ctx.write32(glob + pl::kGlobPrrSelect, prr_idx);
  (void)ctx.write32(glob + pl::kGlobHwmmuBase, base);
  (void)ctx.write32(glob + pl::kGlobHwmmuSize, size);
}

u32 ManagerService::ensure_pl_irq(GuestContext& ctx, u32 prr_idx) {
  if (prr_table_[prr_idx].irq_index != 0xFFFF'FFFFu)
    return prr_table_[prr_idx].irq_index;
  const vaddr_t glob = nova::manager_pl_ctrl_va();
  (void)ctx.write32(glob + pl::kGlobPrrSelect, prr_idx);
  (void)ctx.write32(glob + pl::kGlobIrqAlloc, 1);
  const auto r = ctx.read32(glob + pl::kGlobIrqAlloc);
  prr_table_[prr_idx].irq_index = r.value;
  return r.value;
}

bool ManagerService::launch_pcap(GuestContext& ctx, u32 prr_idx,
                                 hwtask::TaskId task) {
  ctx.exec(rg_pcap_);
  ctx.spend_insns(costs_.insns_pcap);
  const vaddr_t pcap = nova::manager_pcap_va();
  const auto status = ctx.read32(pcap + pl::kPcapStatus);
  if (status.value & pl::kPcapStatusBusy) return false;
  const auto bits = kernel_.find_bitstream(task);
  u32 len = bits.len;
  if (sched_.cache_capacity > 0) len = cache_transfer_len(task);
  (void)ctx.write32(pcap + pl::kPcapSrcAddr, bits.pa);
  (void)ctx.write32(pcap + pl::kPcapLen, len);
  (void)ctx.write32(pcap + pl::kPcapTarget, prr_idx);
  (void)ctx.write32(pcap + pl::kPcapTaskId, task);
  (void)ctx.write32(pcap + pl::kPcapCtrl, 1);
  kernel_.platform().trace().emit(kernel_.platform().clock().now(),
                                  sim::TraceKind::kPcapStart, task, prr_idx);
  return true;
}

HcStatus ManagerService::handle_request(GuestContext& ctx,
                                        const HwTaskRequest& req,
                                        u32& result_flags) {
  ++stats_.requests;
  ctx.exec(rg_handle_);
  // Stage 1: read the request from the mailbox (written by the kernel).
  for (u32 w = 0; w < 4; ++w) (void)ctx.read32(kMailboxVa + w * 4);

  const hwtask::TaskInfo* info =
      kernel_.platform().task_library().find(req.task);
  if (info == nullptr) return HcStatus::kNotFound;
  touch_task_table(ctx, req.task);
  ctx.spend_insns(costs_.insns_validate);

  nova::ProtectionDomain* client = kernel_.pd_by_id(req.client);
  if (client == nullptr) return HcStatus::kInvalidArg;

  // Scheduler admission (all default-off; DESIGN.md §15).
  if (!wait_queue_.empty()) {
    for (const auto& w : wait_queue_) {
      if (w.client != req.client) continue;
      if (w.task == req.task) {
        // Idempotent re-request of a parked task: still waiting.
        result_flags = nova::kHwGrantQueued;
        return HcStatus::kSuccess;
      }
      // A fresh request supersedes the parked one.
      drop_wait_entry(req.client, /*write_record=*/true);
      break;
    }
  }
  // Quota gate: a grant that would grow the client's holdings (owned
  // regions + queued requests) past its quota is bounced. Whether a grant
  // grows the count depends on the region chosen — re-granting a region the
  // client already holds replaces in place — so the check sits at each
  // growth point below, not before selection.
  const u32 quota = effective_quota(req.client);
  const bool at_quota = quota > 0 && grants_in_use(req.client) >= quota;

  // Stage 2: PRR selection.
  bool needs_reconfig = false;
  bool quarantine_blocked = false;
  const int prr =
      select_prr(ctx, *info, req.client, needs_reconfig, quarantine_blocked);
  if (prr < 0) {
    if (quarantine_blocked) {
      // Every idle compatible region is quarantined: rather than stalling
      // the client behind the cooldown, grant the task in software.
      ++stats_.sw_grants;
      c_sw_grants_.inc();
      abandon_stale_reconfig(req.client, 0xFFFF'FFFFu);
      pending_[req.client] = PendingReconfig{req.task, 0xFFFF'FFFFu, 0,
                                             ReconfigOutcome::kFallback};
      result_flags = nova::kHwGrantSoftware;
      return HcStatus::kSuccess;
    }
    if (at_quota) {
      ++stats_.quota_rejections;
      return HcStatus::kBusy;
    }
    if (sched_queueing() && wait_queue_.size() < sched_.queue_depth) {
      enqueue_request(req);
      result_flags = nova::kHwGrantQueued;
      return HcStatus::kSuccess;
    }
    ++stats_.busy_rejections;
    return HcStatus::kBusy;  // true saturation: applicant retries (§IV.E)
  }
  PrrTableEntry& entry = prr_table_[u32(prr)];

  // The chosen region decides whether this grant is net-new: replacing a
  // region the client already owns never grows its count.
  if (at_quota && entry.client != req.client) {
    ++stats_.quota_rejections;
    return HcStatus::kBusy;
  }

  // When a PCAP transfer would be needed but the port is streaming another
  // bitstream, park the request (queueing on) or report Busy rather than
  // blocking the service.
  if (needs_reconfig && entry.task != req.task &&
      kernel_.platform().pcap().busy()) {
    // Parking always adds a wait entry on top of whatever the client owns
    // (even when the chosen region is its own), so the gate is unconditional.
    if (at_quota) {
      ++stats_.quota_rejections;
      return HcStatus::kBusy;
    }
    if (sched_queueing() && wait_queue_.size() < sched_.queue_depth) {
      enqueue_request(req);
      result_flags = nova::kHwGrantQueued;
      return HcStatus::kSuccess;
    }
    ++stats_.busy_rejections;
    return HcStatus::kBusy;
  }

  // Consistency protocol when another client owns the region (§IV.C). With
  // priorities on this is a preemption: the victim parks for a resume.
  if (entry.client != nova::kInvalidPd && entry.client != req.client) {
    if (sched_.priorities)
      preempt_and_park(ctx, u32(prr));
    else
      reclaim_from(ctx, u32(prr));
  }

  // Stage 3: map the interface page into the client. The live (client, VA)
  // -> PRR map decides whether the page table actually needs an update.
  const paddr_t reg_pa =
      kernel_.platform().prr_controller().reg_group_pa(u32(prr));
  const auto key = std::make_pair(req.client, req.iface_va);
  auto it = iface_map_.find(key);
  bool fresh_map = false;
  if (it == iface_map_.end() || it->second != u32(prr)) {
    const HcStatus map_status =
        kernel_.svc_map_into(*pd_, req.client, req.iface_va, reg_pa);
    if (map_status != HcStatus::kSuccess) return map_status;
    iface_map_[key] = u32(prr);
    fresh_map = true;
  }

  // Stage 4: load the hwMMU with the client's data section.
  program_hwmmu(ctx, u32(prr), client->hw_data_pa, client->hw_data_size);

  // PL interrupt plumbing (§IV.D): allocate a source and register it in the
  // client's vGIC.
  const u32 irq_idx = ensure_pl_irq(ctx, u32(prr));
  if (irq_idx < mem::kNumPlIrqs)
    kernel_.svc_assign_pl_irq(*pd_, req.client, mem::pl_irq_to_gic(irq_idx));

  // Stage 5: reconfigure if the task is not already in the region.
  result_flags = nova::kHwGrantReady;
  if (entry.task != req.task || needs_reconfig_forces_pcap(u32(prr), req.task)) {
    kernel_.svc_set_pcap_owner(*pd_, req.client);
    if (!launch_pcap(ctx, u32(prr), req.task)) {
      // The grant dies here without reaching stage 6, so the PRR table never
      // records this client — the interface page mapped in stage 3 must not
      // survive, or a Busy-rejected applicant keeps reaching a register
      // group the table says is free (and a later grant of the same region
      // to another VM would share it). The client's old pending record is
      // untouched: a backoff retry it may have scheduled stays live.
      if (fresh_map) {
        kernel_.svc_unmap_from(*pd_, req.client, req.iface_va);
        iface_map_.erase(key);
      }
      ++stats_.busy_rejections;
      return HcStatus::kBusy;
    }
    // The grant is committed: only now may it supersede the old outcome
    // record (erasing earlier would kill a scheduled retry, stranding its
    // region, on the Busy path above).
    abandon_stale_reconfig(req.client, u32(prr));
    pending_.erase(req.client);
    result_flags = nova::kHwGrantReconfig;
    ++stats_.grants_with_reconfig;
    pending_[req.client] = PendingReconfig{req.task, u32(prr), 1,
                                           ReconfigOutcome::kInFlight};
    inflight_client_ = req.client;
    if (blocking_reconfig_) {
      // Ablation: poll the PCAP to completion inside the service. The
      // paper's design explicitly avoids this ("the manager service does
      // not check the completion of the PCAP transfer").
      auto& plat = kernel_.platform();
      while (query_reconfig(req.client) == nova::kReconfigInFlight) {
        (void)ctx.read32(nova::manager_pcap_va() + pl::kPcapStatus);
        plat.idle_until_next_event(plat.clock().now() +
                                   plat.clock().us_to_cycles(50));
      }
      // Configured (or degraded to software) before returning.
      if (query_reconfig(req.client) == nova::kReconfigFallback) {
        // declare_fallback already unbound the region; skip stage 6.
        result_flags = nova::kHwGrantSoftware;
        return HcStatus::kSuccess;
      }
      result_flags = nova::kHwGrantReady;
    }
  } else {
    // No transfer needed: the grant commits here, superseding any old
    // outcome (and unbinding a region stranded by a dead retry).
    abandon_stale_reconfig(req.client, u32(prr));
    pending_.erase(req.client);
    ++stats_.grants_no_reconfig;
  }

  // Mark the client's own consistency record as consistent. Any outstanding
  // preemption save is superseded by the fresh grant.
  const std::array<u32, 2> ok_record{kStateConsistent, req.task};
  kernel_.svc_write_client_data(*pd_, req.client,
                                consistency_offset(client->hw_data_size),
                                ok_record);
  save_outstanding_.erase(req.client);

  // Stage 6: update the PRR table and return without waiting for PCAP.
  entry.client = req.client;
  entry.task = req.task;
  entry.client_iface_va = req.iface_va;
  entry.reconfiguring = result_flags != 0;
  entry.last_grant_seq = ++grant_seq_;
  ledger_[u32(prr)] = LedgerEntry{req.client, req.task};
  touch_prr_table(ctx, u32(prr), /*write=*/true);
  ctx.spend_insns(costs_.insns_table_update);
  return HcStatus::kSuccess;
}

bool ManagerService::needs_reconfig_forces_pcap(u32 prr_idx,
                                                hwtask::TaskId task) {
  // The table may claim the task is present while the fabric is still dark
  // (first use of a region): verify against the static logic.
  const auto& hw = kernel_.platform().prr_controller().prr(prr_idx);
  return hw.loaded_task != task;
}

// ---- retry / quarantine / fallback (DESIGN.md §8) ---------------------------

u32 ManagerService::query_reconfig(PdId client) {
  // Poll-driven progress for the admission queue: parked requests are
  // re-granted as soon as a region (or the PCAP port) frees up.
  if (!wait_queue_.empty()) pump_wait_queue();
  auto it = pending_.find(client);
  if (it == pending_.end()) return nova::kReconfigReady;
  switch (it->second.outcome) {
    case ReconfigOutcome::kInFlight: return nova::kReconfigInFlight;
    case ReconfigOutcome::kReady: return nova::kReconfigReady;
    case ReconfigOutcome::kFallback: return nova::kReconfigFallback;
    case ReconfigOutcome::kQueued: return nova::kReconfigQueued;
  }
  return nova::kReconfigReady;
}

cycles_t ManagerService::backoff_cycles(u32 attempts_made) const {
  double us = retry_.backoff_base_us;
  for (u32 i = 1; i < attempts_made; ++i) us *= retry_.backoff_factor;
  return kernel_.platform().clock().us_to_cycles(us);
}

void ManagerService::on_pcap_complete(u32 prr, u32 task, bool ok) {
  (void)task;
  const PdId client = inflight_client_;
  inflight_client_ = nova::kInvalidPd;
  if (client == nova::kInvalidPd) return;
  auto it = pending_.find(client);
  if (it == pending_.end()) return;
  PendingReconfig& p = it->second;
  if (p.outcome != ReconfigOutcome::kInFlight || p.prr != prr) return;
  PrrTableEntry& entry = prr_table_[prr];
  entry.reconfiguring = false;

  if (ok) {
    entry.health = PrrHealth::kHealthy;
    entry.fail_streak = 0;
    p.outcome = ReconfigOutcome::kReady;
    c_reconfig_success_.inc();
    // The region is settled: parked requests may now preempt or reuse it.
    if (!wait_queue_.empty()) pump_wait_queue();
    return;
  }

  ++stats_.pcap_failures;
  c_pcap_failures_.inc();
  ++entry.fail_streak;
  log_.debug("PCAP failure %u/%u for client %u on PRR%u (streak %u)",
             p.attempts, retry_.max_attempts, client, prr, entry.fail_streak);
  if (entry.fail_streak >= retry_.quarantine_threshold) quarantine(prr);
  if (entry.health == PrrHealth::kQuarantined ||
      p.attempts >= retry_.max_attempts) {
    declare_fallback(client);
    return;
  }
  auto& plat = kernel_.platform();
  plat.events().schedule_at(plat.clock().now() + backoff_cycles(p.attempts),
                            [this, client] { retry_reconfig(client); });
}

void ManagerService::retry_reconfig(PdId client) {
  auto it = pending_.find(client);
  if (it == pending_.end() || it->second.outcome != ReconfigOutcome::kInFlight)
    return;  // released, superseded, or already decided meanwhile
  PendingReconfig& p = it->second;
  auto& plat = kernel_.platform();
  PrrTableEntry& entry = prr_table_[p.prr];
  const auto& hw = plat.prr_controller().prr(p.prr);
  if (entry.health == PrrHealth::kQuarantined || hw.busy ||
      hw.reconfiguring) {
    // The region became unusable while we backed off; retries stay on the
    // originally granted region (the interface page points at it).
    declare_fallback(client);
    return;
  }
  if (entry.client != client) {
    // The region was reclaimed (or re-granted) during the backoff: a retry
    // now would stream our bitstream over the new owner's logic. The client
    // lost its region — degrade to software.
    declare_fallback(client);
    return;
  }
  if (plat.pcap().busy()) {
    // Another client's bitstream is streaming: push the retry out one more
    // backoff step rather than spinning.
    plat.events().schedule_at(plat.clock().now() + backoff_cycles(p.attempts),
                              [this, client] { retry_reconfig(client); });
    return;
  }
  if (kernel_.pd_by_id(client) == nullptr) {
    pending_.erase(it);
    return;
  }
  kernel_.svc_set_pcap_owner(*pd_, client);
  if (!launch_pcap_phys(p.prr, p.task)) {
    declare_fallback(client);
    return;
  }
  ++p.attempts;
  ++stats_.retries;
  c_retries_.inc();
  entry.reconfiguring = true;
  inflight_client_ = client;
}

bool ManagerService::launch_pcap_phys(u32 prr_idx, hwtask::TaskId task) {
  // Retries fire from the event queue, where no protection domain runs, so
  // the devcfg registers are programmed through the physical bus instead of
  // the manager's virtual window. The DMA re-program itself is charged as
  // zero CPU time — the paper's overlap argument (§IV.E) applies doubly.
  auto& bus = kernel_.platform().bus();
  u32 status = 0;
  (void)bus.read32(mem::kDevcfgBase + pl::kPcapStatus, status);
  if (status & pl::kPcapStatusBusy) return false;
  const auto bits = kernel_.find_bitstream(task);
  u32 len = bits.len;
  if (sched_.cache_capacity > 0) len = cache_transfer_len(task);
  (void)bus.write32(mem::kDevcfgBase + pl::kPcapSrcAddr, u32(bits.pa));
  (void)bus.write32(mem::kDevcfgBase + pl::kPcapLen, len);
  (void)bus.write32(mem::kDevcfgBase + pl::kPcapTarget, prr_idx);
  (void)bus.write32(mem::kDevcfgBase + pl::kPcapTaskId, task);
  (void)bus.write32(mem::kDevcfgBase + pl::kPcapCtrl, 1);
  kernel_.platform().trace().emit(kernel_.platform().clock().now(),
                                  sim::TraceKind::kPcapStart, task, prr_idx);
  return true;
}

void ManagerService::declare_fallback(PdId client) {
  auto it = pending_.find(client);
  if (it == pending_.end()) return;
  PendingReconfig& p = it->second;
  ++stats_.fallbacks;
  c_fallbacks_.inc();
  log_.debug("client %u degraded to software for task %u", client, p.task);
  // Unbind the dark region so other grants can use it after recovery; the
  // client's interface page goes away with it (it points at dead logic).
  if (p.prr < prr_table_.size() && prr_table_[p.prr].client == client) {
    PrrTableEntry& entry = prr_table_[p.prr];
    if (entry.client_iface_va != 0) {
      const auto key = std::make_pair(client, entry.client_iface_va);
      auto mit = iface_map_.find(key);
      if (mit != iface_map_.end() && mit->second == p.prr) {
        kernel_.svc_unmap_from(*pd_, client, entry.client_iface_va);
        iface_map_.erase(mit);
      }
    }
    entry.client = nova::kInvalidPd;
    entry.task = hwtask::kInvalidTask;
    entry.client_iface_va = 0;
    entry.reconfiguring = false;
    ledger_[p.prr] = LedgerEntry{};
  }
  // The outcome flips only after the table row is unbound: the unmap above
  // runs introspection mid-call, and the stale binding must still be
  // covered by the in-flight record while it is visible.
  p.outcome = ReconfigOutcome::kFallback;
  // The region just freed: hand it to the highest-priority parked request.
  if (!wait_queue_.empty()) pump_wait_queue();
}

void ManagerService::abandon_stale_reconfig(PdId client, u32 keep_prr) {
  auto it = pending_.find(client);
  if (it == pending_.end()) return;
  const PendingReconfig& p = it->second;
  if (p.outcome != ReconfigOutcome::kInFlight) return;
  if (p.prr >= prr_table_.size() || p.prr == keep_prr) return;
  // The caller is about to erase this record, so the backoff retry for the
  // old region will never relaunch — its table row would claim a task the
  // fabric never received, forever. Unbind it like a fallback does.
  PrrTableEntry& entry = prr_table_[p.prr];
  if (entry.client != client) return;
  if (entry.client_iface_va != 0) {
    const auto key = std::make_pair(client, entry.client_iface_va);
    auto mit = iface_map_.find(key);
    if (mit != iface_map_.end() && mit->second == p.prr) {
      kernel_.svc_unmap_from(*pd_, client, entry.client_iface_va);
      iface_map_.erase(mit);
    }
  }
  entry.client = nova::kInvalidPd;
  entry.task = hwtask::kInvalidTask;
  entry.client_iface_va = 0;
  entry.reconfiguring = false;
  ledger_[p.prr] = LedgerEntry{};
  log_.debug("client %u abandoned failed reconfig on PRR%u", client, p.prr);
}

void ManagerService::quarantine(u32 prr_idx) {
  PrrTableEntry& entry = prr_table_[prr_idx];
  if (entry.health == PrrHealth::kQuarantined) return;
  entry.health = PrrHealth::kQuarantined;
  ++stats_.quarantines;
  c_quarantines_.inc();
  log_.info("PRR%u quarantined after %u consecutive PCAP failures", prr_idx,
            entry.fail_streak);
  auto& plat = kernel_.platform();
  plat.events().schedule_at(
      plat.clock().now() + plat.clock().us_to_cycles(retry_.quarantine_us),
      [this, prr_idx] { unquarantine(prr_idx); });
}

void ManagerService::unquarantine(u32 prr_idx) {
  PrrTableEntry& entry = prr_table_[prr_idx];
  if (entry.health != PrrHealth::kQuarantined) return;
  entry.health = PrrHealth::kSuspect;
  entry.fail_streak = 0;
  ++stats_.unquarantines;
  c_unquarantines_.inc();
  log_.info("PRR%u back from quarantine (suspect)", prr_idx);
  // A usable region reappeared: let parked requests at it.
  if (!wait_queue_.empty()) pump_wait_queue();
}

HcStatus ManagerService::handle_release(GuestContext& ctx, PdId client,
                                        hwtask::TaskId task) {
  ctx.exec(rg_release_);
  ctx.spend_insns(costs_.insns_release);
  for (u32 prr = 0; prr < num_prrs(); ++prr) {
    PrrTableEntry& entry = prr_table_[prr];
    if (entry.client != client || entry.task != task) continue;
    if (kernel_.platform().prr_controller().prr(prr).busy)
      return HcStatus::kBusy;
    if (entry.client_iface_va != 0) {
      const auto key = std::make_pair(client, entry.client_iface_va);
      auto it = iface_map_.find(key);
      if (it != iface_map_.end() && it->second == prr) {
        kernel_.svc_unmap_from(*pd_, client, entry.client_iface_va);
        iface_map_.erase(it);
      }
    }
    program_hwmmu(ctx, prr, 0, 0);
    entry.client = nova::kInvalidPd;
    entry.client_iface_va = 0;
    ledger_[prr] = LedgerEntry{};
    // The configured task stays resident for cheap re-dispatch.
    touch_prr_table(ctx, prr, /*write=*/true);
    ++stats_.releases;
    abandon_stale_reconfig(client, prr);
    pending_.erase(client);  // nothing left to report for this client
    // The freed region goes to the highest-priority parked request.
    if (!wait_queue_.empty()) pump_wait_queue();
    return HcStatus::kSuccess;
  }
  // A parked (queued or preempted) request can be released before it ever
  // re-gains a region.
  for (const auto& w : wait_queue_) {
    if (w.client != client || w.task != task) continue;
    drop_wait_entry(client, /*write_record=*/true);
    pending_.erase(client);
    ++stats_.releases;
    return HcStatus::kSuccess;
  }
  return HcStatus::kNotFound;
}

void ManagerService::handle_client_destroyed(PdId client) {
  auto& ctl = kernel_.platform().prr_controller();
  const u32 glob = mem::kPrrMaxRegions * mem::kPrrRegGroupStride;
  for (u32 prr = 0; prr < num_prrs(); ++prr) {
    PrrTableEntry& entry = prr_table_[prr];
    if (entry.client != client) continue;
    // Clear the hwMMU window at the device: the client's physical slab can
    // be handed to a future VM, and a stale window would let the region
    // keep scribbling into it.
    ctl.mmio_write(glob + pl::kGlobPrrSelect, prr);
    ctl.mmio_write(glob + pl::kGlobHwmmuBase, 0);
    ctl.mmio_write(glob + pl::kGlobHwmmuSize, 0);
    entry.client = nova::kInvalidPd;
    entry.client_iface_va = 0;
    ledger_[prr] = LedgerEntry{};
    // Like handle_release: the configured task stays resident so a future
    // grant of the same task re-dispatches without a PCAP transfer.
    log_.info("PRR%u reclaimed from destroyed client %u", prr, client);
  }
  // Interface-page mappings died with the client's address space; no unmap
  // hypercall is needed (or possible) — just drop the records.
  for (auto it = iface_map_.begin(); it != iface_map_.end();) {
    if (it->first.first == client)
      it = iface_map_.erase(it);
    else
      ++it;
  }
  pending_.erase(client);
  if (inflight_client_ == client) inflight_client_ = nova::kInvalidPd;
  // Scheduler bookkeeping dies with the client (no record write possible —
  // the data section is gone with the PD).
  std::erase_if(wait_queue_,
                [&](const WaitEntry& w) { return w.client == client; });
  save_outstanding_.erase(client);
  prio_override_.erase(client);
  quota_override_.erase(client);
  if (!wait_queue_.empty()) pump_wait_queue();
}

// ---- fuzz-oracle sabotage (tests only) --------------------------------------

void ManagerService::sabotage_for_test(u32 kind) {
  // Find a live client id to synthesize state around (the fuzzer always has
  // running VMs; fall back to id 1).
  PdId live = 1;
  for (PdId id = 0; id < 256; ++id) {
    nova::ProtectionDomain* pd = kernel_.pd_by_id(id);
    // The synthesized state must belong to a hw-task client: the oracles
    // read its §IV.C consistency record, which the manager PD (and any VM
    // without a data section) does not have.
    if (pd == nullptr || pd == pd_ || pd->hw_data_size == 0) continue;
    live = id;
    break;
  }
  switch (kind) {
    case 1: {  // launch ledger contradicts the PRR table
      for (u32 prr = 0; prr < num_prrs(); ++prr) {
        if (prr_table_[prr].client == nova::kInvalidPd) continue;
        ledger_[prr].task = prr_table_[prr].task + 1;
        return;
      }
      // No owned region: a ledger entry for an unowned one is just as wrong.
      ledger_[0] = LedgerEntry{live, 1};
      return;
    }
    case 2: {  // saved context diverges from the client's §IV.C record
      if (!save_outstanding_.empty()) {
        save_outstanding_.begin()->second.regs[0] ^= 0xDEAD'0001u;
        return;
      }
      // Synthesize a phantom save: the record in the client's data section
      // still says consistent, so the round-trip oracle must fire.
      SavedContext s;
      s.task = 1;
      s.regs.fill(0xDEAD'BEEFu);
      save_outstanding_[live] = s;
      return;
    }
    case 3: {  // a client holds more regions than its quota admits
      if (num_prrs() < 2) return;
      for (u32 prr = 0; prr < 2; ++prr) {
        PrrTableEntry& e = prr_table_[prr];
        e.client = live;
        if (e.task == hwtask::kInvalidTask) e.task = hwtask::TaskId(1 + prr);
        ledger_[prr] = LedgerEntry{live, e.task};  // keep oracle 1 quiet
      }
      quota_override_[live] = 1;
      return;
    }
    case 4: {  // cache entry names a bitstream the task table doesn't have
      cache_.push_back(CacheEntry{hwtask::TaskId(0xBEEF), 0, 0,
                                  ++cache_seq_, false});
      return;
    }
    default:
      break;
  }
}

}  // namespace minova::hwmgr
