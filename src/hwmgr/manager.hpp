// Hardware Task Manager — the microkernel user service owning DPR
// hardware-task allocation (paper §IV.B/§IV.E, Fig. 7).
//
// Runs in its own protection domain with the map-other and PL-control
// capabilities. Owns two tables in its private memory:
//   * the hardware task table: per task, bitstream location/size and the
//     list of PRRs able to host it;
//   * the PRR table: per region, current client, configured task and
//     execution state.
//
// A request is handled in the six stages of Fig. 7:
//   (1) the guest's hypercall invokes the service;
//   (2) select a suitable PRR (idle, compatible; prefer one already
//       configured with the task) or return Busy;
//   (3) map the PRR's register-group page into the client's page table;
//   (4) load the hwMMU with the client's hardware task data section;
//   (5) launch a PCAP transfer when the task is not already configured;
//   (6) return Success or Reconfig without waiting for PCAP completion.
// Reclaiming a region from a previous client saves its interface registers
// into that client's data section with an *inconsistent* state flag and
// demaps the interface page (§IV.C).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "nova/kernel.hpp"

namespace minova::hwmgr {

/// Consistency record layout at the tail of each client's hardware task
/// data section (paper §IV.C): a state flag, the task id, and the saved
/// interface register contents.
inline constexpr u32 kConsistencyWords = 2 + 8;
inline constexpr u32 kStateConsistent = 0;
inline constexpr u32 kStateInconsistent = 1;

/// Offset of the consistency record within the data section.
constexpr u32 consistency_offset(u32 data_section_size) {
  return data_section_size - kConsistencyWords * 4;
}

/// PRR selection policy (stage 2 of Fig. 7). The paper's allocator prefers
/// a region already configured with the requested task; the alternatives
/// exist for the policy ablation bench.
enum class AllocPolicy : u8 {
  kResidentFirst = 0,  // paper: reuse a configured region when possible
  kFirstFit,           // ignore residency: first idle compatible region
  kLruRegion,          // least-recently-granted idle compatible region
};

/// Instruction-count model of the manager's allocation work, calibrated so
/// the native execution time lands near the paper's 15 µs (Table III). The
/// counts stand for the table validation, bitstream header parsing, PRR
/// state evaluation, devcfg/PCAP driver work and bookkeeping a real
/// allocator performs per request.
struct ManagerCostModel {
  u32 insns_validate = 3000;       // argument + task-table validation
  u32 insns_select_per_prr = 700;  // per-PRR state evaluation
  u32 insns_hwmmu = 700;           // window computation + programming
  u32 insns_pcap = 1800;           // devcfg driver: header, DMA descriptors
  u32 insns_consistency = 800;     // register save + record construction
  u32 insns_table_update = 2200;   // task/PRR table writeback
  u32 insns_release = 700;
};

struct PrrTableEntry {
  nova::PdId client = nova::kInvalidPd;
  hwtask::TaskId task = hwtask::kInvalidTask;      // configured (or loading)
  bool reconfiguring = false;
  vaddr_t client_iface_va = 0;
  u32 irq_index = 0xFFFF'FFFFu;  // allocated PL IRQ source
  u64 last_grant_seq = 0;        // recency stamp for the LRU policy
};

struct ManagerStats {
  u64 requests = 0;
  u64 grants_no_reconfig = 0;
  u64 grants_with_reconfig = 0;
  u64 busy_rejections = 0;
  u64 reclaims = 0;  // region taken from another client
  u64 releases = 0;
};

class ManagerService final : public nova::HwService {
 public:
  explicit ManagerService(nova::Kernel& kernel,
                          const ManagerCostModel& costs = {});

  /// Create the manager's protection domain and register this service.
  /// Priority defaults to one above the guests' (paper §IV.E).
  nova::ProtectionDomain& install(u32 priority = 2);

  // nova::HwService
  nova::HcStatus handle_request(nova::GuestContext& ctx,
                                const nova::HwTaskRequest& req,
                                u32& result_flags) override;
  nova::HcStatus handle_release(nova::GuestContext& ctx, nova::PdId client,
                                hwtask::TaskId task) override;

  void set_policy(AllocPolicy p) { policy_ = p; }
  AllocPolicy policy() const { return policy_; }

  /// Ablation (§IV.E stage 6): when set, the service waits for PCAP
  /// completion before returning instead of overlapping the transfer with
  /// the client's execution.
  void set_blocking_reconfig(bool on) { blocking_reconfig_ = on; }

  const PrrTableEntry& prr_entry(u32 idx) const { return prr_table_[idx]; }
  u32 num_prrs() const { return u32(prr_table_.size()); }
  const ManagerStats& stats() const { return stats_; }

 private:
  // Stage 2: pick a PRR for `task`; returns index or -1 when all busy.
  int select_prr(nova::GuestContext& ctx, const hwtask::TaskInfo& info,
                 nova::PdId requester, bool& needs_reconfig);
  // §IV.C consistency protocol when reclaiming from `old_client`.
  void reclaim_from(nova::GuestContext& ctx, u32 prr_idx);
  // Device programming helpers (PL global control page via the manager's
  // mapped window).
  void program_hwmmu(nova::GuestContext& ctx, u32 prr_idx, paddr_t base,
                     u32 size);
  u32 ensure_pl_irq(nova::GuestContext& ctx, u32 prr_idx);
  bool launch_pcap(nova::GuestContext& ctx, u32 prr_idx, hwtask::TaskId task);
  bool needs_reconfig_forces_pcap(u32 prr_idx, hwtask::TaskId task);
  // Table traffic: charge reads/writes against the manager's own memory.
  void touch_task_table(nova::GuestContext& ctx, hwtask::TaskId task);
  void touch_prr_table(nova::GuestContext& ctx, u32 prr_idx, bool write);

  nova::Kernel& kernel_;
  ManagerCostModel costs_;
  bool blocking_reconfig_ = false;
  AllocPolicy policy_ = AllocPolicy::kResidentFirst;
  u64 grant_seq_ = 0;
  nova::ProtectionDomain* pd_ = nullptr;
  std::vector<PrrTableEntry> prr_table_;
  // Where each client's interface VA currently points. A VA can be remapped
  // across grants (same window, different PRR); unmap/skip decisions must
  // consult the *live* mapping, not the per-PRR history.
  std::map<std::pair<nova::PdId, vaddr_t>, u32> iface_map_;
  ManagerStats stats_;

  // Manager text footprint (in the manager image).
  cpu::CodeLayout code_;
  cpu::CodeRegion rg_handle_, rg_select_, rg_consistency_, rg_pcap_,
      rg_release_;

  // Table locations in the manager's virtual space.
  static constexpr vaddr_t kTaskTableVa = 0x2000;
  static constexpr vaddr_t kPrrTableVa = 0x3000;
  static constexpr vaddr_t kMailboxVa = 0x1000;

  util::Logger log_{"hwmgr"};
};

}  // namespace minova::hwmgr
