// Hardware Task Manager — the microkernel user service owning DPR
// hardware-task allocation (paper §IV.B/§IV.E, Fig. 7).
//
// Runs in its own protection domain with the map-other and PL-control
// capabilities. Owns two tables in its private memory:
//   * the hardware task table: per task, bitstream location/size and the
//     list of PRRs able to host it;
//   * the PRR table: per region, current client, configured task and
//     execution state.
//
// A request is handled in the six stages of Fig. 7:
//   (1) the guest's hypercall invokes the service;
//   (2) select a suitable PRR (idle, compatible; prefer one already
//       configured with the task) or return Busy;
//   (3) map the PRR's register-group page into the client's page table;
//   (4) load the hwMMU with the client's hardware task data section;
//   (5) launch a PCAP transfer when the task is not already configured;
//   (6) return Success or Reconfig without waiting for PCAP completion.
// Reclaiming a region from a previous client saves its interface registers
// into that client's data section with an *inconsistent* state flag and
// demaps the interface page (§IV.C).
//
// On top of the paper's allocator sits an opt-in scheduler (DESIGN.md §15):
// per-client priorities with preemptive reclaim (the §IV.C record doubles as
// the context-switch save area; preempted clients park on a wait queue and
// resume from their saved registers when a region frees), an LRU bitstream
// cache with prefetch-on-queue, and per-VM quotas with a bounded admission
// queue so kBusy is reserved for true saturation. Every scheduler feature
// defaults OFF, and the default configuration is bit-identical to the
// pre-scheduler manager.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "hwtask/consistency.hpp"
#include "nova/kernel.hpp"

namespace minova::hwmgr {

// Consistency-record layout (§IV.C) — canonical home is
// hwtask/consistency.hpp; re-exported here for the existing callers.
using hwtask::consistency_offset;
using hwtask::kConsistencyWords;
using hwtask::kStateConsistent;
using hwtask::kStateInconsistent;

/// PRR selection policy (stage 2 of Fig. 7). The paper's allocator prefers
/// a region already configured with the requested task; the alternatives
/// exist for the policy ablation bench.
enum class AllocPolicy : u8 {
  kResidentFirst = 0,  // paper: reuse a configured region when possible
  kFirstFit,           // ignore residency: first idle compatible region
  kLruRegion,          // least-recently-granted idle compatible region
};

/// Instruction-count model of the manager's allocation work, calibrated so
/// the native execution time lands near the paper's 15 µs (Table III). The
/// counts stand for the table validation, bitstream header parsing, PRR
/// state evaluation, devcfg/PCAP driver work and bookkeeping a real
/// allocator performs per request.
struct ManagerCostModel {
  u32 insns_validate = 3000;       // argument + task-table validation
  u32 insns_select_per_prr = 700;  // per-PRR state evaluation
  u32 insns_hwmmu = 700;           // window computation + programming
  u32 insns_pcap = 1800;           // devcfg driver: header, DMA descriptors
  u32 insns_consistency = 800;     // register save + record construction
  u32 insns_table_update = 2200;   // task/PRR table writeback
  u32 insns_release = 700;
};

/// Retry-with-exponential-backoff policy for failed bitstream downloads,
/// plus per-PRR quarantine: a region whose downloads keep failing is pulled
/// from allocation for a cooldown instead of burning PCAP bandwidth.
struct RetryPolicy {
  u32 max_attempts = 4;            // total transfer attempts per grant
  double backoff_base_us = 100.0;  // delay before the first retry
  double backoff_factor = 2.0;     // delay multiplier per further retry
  u32 quarantine_threshold = 3;    // consecutive failures that quarantine
  double quarantine_us = 50'000.0; // cooldown before the region is retried
};

/// Scheduler configuration (DESIGN.md §15). All features default off: the
/// default-constructed config reproduces the pre-scheduler manager exactly
/// (bit-identical Table III / density / fuzz digests).
struct SchedConfig {
  /// Priority-aware allocation: a request may preempt a region owned by a
  /// strictly lower-priority client (park + resume via the §IV.C record).
  bool priorities = false;
  /// Bitstream cache capacity in entries (task bitstreams held in the
  /// manager's OCM staging buffers). 0 disables the cache entirely.
  u32 cache_capacity = 0;
  /// Prefetch a queued request's bitstream into the cache while it waits.
  bool prefetch = false;
  /// Per-VM cap on concurrent hardware-task grants (owned regions plus
  /// queued requests). 0 = unlimited.
  u32 default_quota = 0;
  /// Admission-queue depth. 0 = legacy behaviour (immediate kBusy when no
  /// region is available); >0 parks up to this many requests and answers
  /// kHwGrantQueued, reserving kBusy for true saturation.
  u32 queue_depth = 0;
  /// PCAP bytes streamed on a cache hit: the cached bitstream only needs a
  /// header re-link + ICAP handoff, not the full transfer.
  u32 cache_hit_load_bytes = 1024;
};

/// Per-PRR health, driven by PCAP transfer outcomes.
enum class PrrHealth : u8 {
  kHealthy = 0,
  kSuspect,      // just left quarantine; one more failure re-quarantines
  kQuarantined,  // excluded from allocation until the cooldown expires
};

/// Reconfiguration state of a client's latest grant (kHwTaskQuery answer).
enum class ReconfigOutcome : u8 {
  kInFlight = 0,  // a transfer (or a scheduled retry) is pending
  kReady,         // the task is configured in the region
  kFallback,      // retries exhausted: client should run in software
  kQueued,        // admission-queued (or preempted): waiting for a region
};

struct PrrTableEntry {
  nova::PdId client = nova::kInvalidPd;
  hwtask::TaskId task = hwtask::kInvalidTask;      // configured (or loading)
  bool reconfiguring = false;
  vaddr_t client_iface_va = 0;
  u32 irq_index = 0xFFFF'FFFFu;  // allocated PL IRQ source
  u64 last_grant_seq = 0;        // recency stamp for the LRU policy
  PrrHealth health = PrrHealth::kHealthy;
  u32 fail_streak = 0;  // consecutive failed downloads into this region
};

struct ManagerStats {
  u64 requests = 0;
  u64 grants_no_reconfig = 0;
  u64 grants_with_reconfig = 0;
  u64 busy_rejections = 0;
  u64 reclaims = 0;  // region taken from another client
  u64 releases = 0;
  u64 pcap_failures = 0;   // failed transfer attempts observed
  u64 retries = 0;         // re-launched transfers after a failure
  u64 quarantines = 0;     // healthy/suspect -> quarantined transitions
  u64 unquarantines = 0;   // cooldown expirations
  u64 fallbacks = 0;       // grants degraded to software after failures
  u64 sw_grants = 0;       // requests granted as software up front
  // ---- scheduler (all zero when SchedConfig is default-off) ----
  u64 preemptions = 0;       // regions taken from a lower-priority client
  u64 resumes = 0;           // preempted grants resumed from saved registers
  u64 enqueued = 0;          // requests parked on the admission queue
  u64 wait_grants = 0;       // queued requests granted a region
  u64 quota_rejections = 0;  // requests bounced by the per-VM quota
  u64 cache_hits = 0;        // PCAP launches served from the bitstream cache
  u64 cache_misses = 0;      // PCAP launches that streamed the full image
  u64 cache_evictions = 0;   // LRU entries dropped at capacity
  u64 cache_prefetches = 0;  // bitstreams staged while the request queued
};

class ManagerService final : public nova::HwService {
 public:
  explicit ManagerService(nova::Kernel& kernel,
                          const ManagerCostModel& costs = {});
  ~ManagerService() override;

  /// Create the manager's protection domain and register this service.
  /// Priority defaults to one above the guests' (paper §IV.E).
  nova::ProtectionDomain& install(u32 priority = 2);

  // nova::HwService
  nova::HcStatus handle_request(nova::GuestContext& ctx,
                                const nova::HwTaskRequest& req,
                                u32& result_flags) override;
  nova::HcStatus handle_release(nova::GuestContext& ctx, nova::PdId client,
                                hwtask::TaskId task) override;
  u32 query_reconfig(nova::PdId client) override;
  /// Kernel notification: `client`'s PD was destroyed. Host-side cleanup
  /// only — the guest context is gone, so nothing is charged; regions held
  /// by the client are reclaimed (task stays resident for warm re-dispatch)
  /// and all per-client bookkeeping is dropped.
  void handle_client_destroyed(nova::PdId client) override;
  /// kHwTaskQuery(kHwQuerySetPrio): per-client hardware-task priority
  /// override (clamped to 1..15). Stored unconditionally; it only steers
  /// allocation when SchedConfig::priorities is on.
  nova::HcStatus set_client_priority(nova::PdId client, u32 prio) override;
  /// kHwTaskQuery(kHwQueryQuota): packed (quota << 16) | grants_in_use.
  u32 query_quota(nova::PdId client) override;
  /// With any scheduler feature on, queries run inside the manager's domain:
  /// the query path pumps the wait queue, and a re-grant's mapping/IRQ work
  /// must sit in the service window so the switch back to the caller replays
  /// the vGIC mask protocol. Default-off keeps the legacy in-place dispatch.
  bool query_wants_service_ctx() const override {
    return sched_.priorities || sched_.queue_depth > 0 ||
           sched_.cache_capacity > 0;
  }

  void set_policy(AllocPolicy p) { policy_ = p; }
  AllocPolicy policy() const { return policy_; }
  void set_retry_policy(const RetryPolicy& p) { retry_ = p; }
  const RetryPolicy& retry_policy() const { return retry_; }
  void set_sched_config(const SchedConfig& c) { sched_ = c; }
  const SchedConfig& sched_config() const { return sched_; }
  PrrHealth prr_health(u32 idx) const { return prr_table_[idx].health; }

  /// Ablation (§IV.E stage 6): when set, the service waits for PCAP
  /// completion before returning instead of overlapping the transfer with
  /// the client's execution.
  void set_blocking_reconfig(bool on) { blocking_reconfig_ = on; }

  const PrrTableEntry& prr_entry(u32 idx) const { return prr_table_[idx]; }
  u32 num_prrs() const { return u32(prr_table_.size()); }
  const ManagerStats& stats() const { return stats_; }

  /// True while an event-context wait-queue pump is mid-update (its kernel
  /// service calls fire trap-exit hooks between individual table writes).
  /// The fuzz oracles defer exactly as they do for the synchronous service
  /// window and re-check at the next quiescent event.
  bool in_service() const { return pumping_; }

  /// Live (client, interface VA) -> PRR bindings. A PRR table entry may keep
  /// a stale client/VA record after the same client re-grants through the
  /// same window (warm-region cache); this map is the authoritative view of
  /// which register-group page each client VA maps right now. Read-only —
  /// used by the fuzzer's ownership oracle.
  using IfaceBindings = std::map<std::pair<nova::PdId, vaddr_t>, u32>;
  const IfaceBindings& iface_bindings() const { return iface_map_; }

  // ---- scheduler state, exposed read-only for the fuzz oracles ----

  /// Independent launch ledger: who launched what into each PRR, written on
  /// every grant/regrant and cleared on every unbind. The ownership oracle
  /// cross-checks it against the PRR table and the fabric.
  struct LedgerEntry {
    nova::PdId client = nova::kInvalidPd;
    hwtask::TaskId task = hwtask::kInvalidTask;
  };
  const std::vector<LedgerEntry>& launch_ledger() const { return ledger_; }

  /// True while `client`'s reconfiguration of `prr` is undecided — a PCAP
  /// transfer in flight or a failed attempt awaiting its scheduled retry.
  /// Inside this window the fabric legitimately lags the ledger (the old
  /// task is still resident), so the ledger oracle defers its fabric check.
  bool reconfig_undecided(nova::PdId client, u32 prr) const;

  /// Outstanding preemption saves: one per client, mirroring the §IV.C
  /// record in the client's data section (the save/restore oracle checks
  /// the round trip).
  struct SavedContext {
    hwtask::TaskId task = hwtask::kInvalidTask;
    std::array<u32, 8> regs{};
  };
  const std::map<nova::PdId, SavedContext>& saved_contexts() const {
    return save_outstanding_;
  }

  /// Bitstream cache entries (task id + staged image location).
  struct CacheEntry {
    hwtask::TaskId task = hwtask::kInvalidTask;
    paddr_t pa = 0;
    u32 len = 0;
    u64 stamp = 0;  // LRU recency
    bool prefetched = false;
  };
  const std::vector<CacheEntry>& bitstream_cache() const { return cache_; }

  /// Admission/preemption wait queue (priority order, FIFO within a level).
  struct WaitEntry {
    nova::PdId client = nova::kInvalidPd;
    hwtask::TaskId task = hwtask::kInvalidTask;
    vaddr_t iface_va = 0;
    u32 prio = 0;
    bool resume = false;  // re-grant restores the saved register context
    u64 enq_seq = 0;
  };
  const std::vector<WaitEntry>& wait_queue() const { return wait_queue_; }

  /// Effective hardware-task priority of `client` (override, else PD
  /// scheduling priority, else 1).
  u32 client_priority(nova::PdId client) const;
  /// Effective quota for `client` (per-VM override, else the config
  /// default; 0 = unlimited) and the grants it currently consumes.
  u32 effective_quota(nova::PdId client) const;
  u32 grants_in_use(nova::PdId client) const;
  /// Per-VM quota override (tests / management plane).
  void set_vm_quota(nova::PdId client, u32 quota) {
    quota_override_[client] = quota;
  }

  /// Deliberately corrupt scheduler state so the fuzz oracles can prove
  /// they fire (mirrors Kernel::smp_sabotage_for_test). Kinds:
  ///   1 = launch ledger contradicts the PRR table (ownership oracle)
  ///   2 = saved register context diverges from the client's §IV.C record
  ///   3 = a client holds more regions than its quota admits
  ///   4 = a cache entry names a bitstream the task table doesn't have
  /// Robust at any step: kinds that need live state synthesize it.
  void sabotage_for_test(u32 kind);

 private:
  /// One in-flight (or decided) reconfiguration per client.
  struct PendingReconfig {
    hwtask::TaskId task = hwtask::kInvalidTask;
    u32 prr = 0xFFFF'FFFFu;
    u32 attempts = 0;  // transfer attempts launched so far
    ReconfigOutcome outcome = ReconfigOutcome::kInFlight;
  };

  // Stage 2: pick a PRR for `task`; returns index or -1 when all busy.
  // `quarantine_blocked` reports that at least one idle compatible region
  // existed but was quarantined (caller grants software instead of Busy).
  int select_prr(nova::GuestContext& ctx, const hwtask::TaskInfo& info,
                 nova::PdId requester, bool& needs_reconfig,
                 bool& quarantine_blocked);
  // Retry/backoff/fallback machinery (observer-driven; see DESIGN.md §8).
  void on_pcap_complete(u32 prr, u32 task, bool ok);
  void retry_reconfig(nova::PdId client);
  void declare_fallback(nova::PdId client);
  // Erasing a client's pending record kills its scheduled retry — if that
  // retry was for a region other than `keep_prr`, the region's table row
  // still names a task the fabric never received. Unbind it first.
  void abandon_stale_reconfig(nova::PdId client, u32 keep_prr);
  void quarantine(u32 prr_idx);
  void unquarantine(u32 prr_idx);

  // `hwmgr.*` registry counters, interned once at construction.
  sim::CounterHandle c_sw_grants_, c_reconfig_success_, c_pcap_failures_,
      c_retries_, c_fallbacks_, c_quarantines_, c_unquarantines_,
      c_preemptions_, c_resumes_, c_cache_hits_, c_cache_misses_,
      c_cache_evicts_;
  cycles_t backoff_cycles(u32 attempts_made) const;
  // Re-program the PCAP from an event context (no manager VA translation).
  bool launch_pcap_phys(u32 prr_idx, hwtask::TaskId task);
  // §IV.C consistency protocol when reclaiming from `old_client`. The
  // register image it saved is kept for preempt_and_park to hand to the
  // wait queue (valid only immediately after the call).
  void reclaim_from(nova::GuestContext& ctx, u32 prr_idx);
  std::array<u32, 8> last_reclaim_regs_{};
  // Device programming helpers (PL global control page via the manager's
  // mapped window).
  void program_hwmmu(nova::GuestContext& ctx, u32 prr_idx, paddr_t base,
                     u32 size);
  u32 ensure_pl_irq(nova::GuestContext& ctx, u32 prr_idx);
  bool launch_pcap(nova::GuestContext& ctx, u32 prr_idx, hwtask::TaskId task);
  bool needs_reconfig_forces_pcap(u32 prr_idx, hwtask::TaskId task);
  // Table traffic: charge reads/writes against the manager's own memory.
  void touch_task_table(nova::GuestContext& ctx, hwtask::TaskId task);
  void touch_prr_table(nova::GuestContext& ctx, u32 prr_idx, bool write);

  // ---- scheduler internals (DESIGN.md §15) ----
  bool sched_queueing() const { return sched_.queue_depth > 0; }
  // Preempt the region's owner (charged, from a request context): §IV.C
  // save via reclaim_from, then park the victim for a resumed re-grant.
  void preempt_and_park(nova::GuestContext& ctx, u32 prr_idx);
  // Event-context preemption (no GuestContext; zero simulated charge, like
  // the retry path): same save/park protocol over the physical bus.
  void preempt_phys(u32 prr_idx);
  void park_victim(nova::PdId victim, hwtask::TaskId task, vaddr_t iface_va,
                   const std::array<u32, 8>& regs);
  // Enqueue an admission-queued fresh request (no saved context).
  void enqueue_request(const nova::HwTaskRequest& req);
  // Remove `client`'s wait entry; when its preemption save is outstanding
  // and the client is live, rewrite the §IV.C record consistent (the save
  // is being abandoned, not resumed).
  void drop_wait_entry(nova::PdId client, bool write_record);
  // Grant regions to parked requests, highest priority first. Runs from
  // event/poll contexts over the physical bus; zero simulated charge.
  void pump_wait_queue();
  // Try to place one wait entry; true when it was granted (and removed).
  bool try_regrant(const WaitEntry& w);
  // Bitstream-cache lookup for a PCAP launch: returns the transfer length
  // (full image on miss, header-only on hit) and maintains the LRU state.
  u32 cache_transfer_len(hwtask::TaskId task);
  void cache_prefetch(hwtask::TaskId task);
  void cache_insert(hwtask::TaskId task, bool prefetched);

  nova::Kernel& kernel_;
  ManagerCostModel costs_;
  bool blocking_reconfig_ = false;
  AllocPolicy policy_ = AllocPolicy::kResidentFirst;
  RetryPolicy retry_;
  SchedConfig sched_;
  u64 grant_seq_ = 0;
  // Client whose transfer currently streams through the (single) PCAP port;
  // attributes completion-observer callbacks to the right grant.
  nova::PdId inflight_client_ = nova::kInvalidPd;
  std::map<nova::PdId, PendingReconfig> pending_;
  nova::ProtectionDomain* pd_ = nullptr;
  std::vector<PrrTableEntry> prr_table_;
  // Where each client's interface VA currently points. A VA can be remapped
  // across grants (same window, different PRR); unmap/skip decisions must
  // consult the *live* mapping, not the per-PRR history.
  std::map<std::pair<nova::PdId, vaddr_t>, u32> iface_map_;
  ManagerStats stats_;

  // ---- scheduler state ----
  std::vector<LedgerEntry> ledger_;  // one per PRR
  std::map<nova::PdId, SavedContext> save_outstanding_;
  std::vector<WaitEntry> wait_queue_;
  std::vector<CacheEntry> cache_;
  std::map<nova::PdId, u32> prio_override_;
  std::map<nova::PdId, u32> quota_override_;
  u64 wait_seq_ = 0;
  u64 cache_seq_ = 0;
  bool pumping_ = false;  // re-entrancy guard for pump_wait_queue

  // Manager text footprint (in the manager image).
  cpu::CodeLayout code_;
  cpu::CodeRegion rg_handle_, rg_select_, rg_consistency_, rg_pcap_,
      rg_release_;

  // Table locations in the manager's virtual space.
  static constexpr vaddr_t kTaskTableVa = 0x2000;
  static constexpr vaddr_t kPrrTableVa = 0x3000;
  static constexpr vaddr_t kMailboxVa = 0x1000;

  util::Logger log_{"hwmgr"};
};

}  // namespace minova::hwmgr
