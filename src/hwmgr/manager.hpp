// Hardware Task Manager — the microkernel user service owning DPR
// hardware-task allocation (paper §IV.B/§IV.E, Fig. 7).
//
// Runs in its own protection domain with the map-other and PL-control
// capabilities. Owns two tables in its private memory:
//   * the hardware task table: per task, bitstream location/size and the
//     list of PRRs able to host it;
//   * the PRR table: per region, current client, configured task and
//     execution state.
//
// A request is handled in the six stages of Fig. 7:
//   (1) the guest's hypercall invokes the service;
//   (2) select a suitable PRR (idle, compatible; prefer one already
//       configured with the task) or return Busy;
//   (3) map the PRR's register-group page into the client's page table;
//   (4) load the hwMMU with the client's hardware task data section;
//   (5) launch a PCAP transfer when the task is not already configured;
//   (6) return Success or Reconfig without waiting for PCAP completion.
// Reclaiming a region from a previous client saves its interface registers
// into that client's data section with an *inconsistent* state flag and
// demaps the interface page (§IV.C).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "nova/kernel.hpp"

namespace minova::hwmgr {

/// Consistency record layout at the tail of each client's hardware task
/// data section (paper §IV.C): a state flag, the task id, and the saved
/// interface register contents.
inline constexpr u32 kConsistencyWords = 2 + 8;
inline constexpr u32 kStateConsistent = 0;
inline constexpr u32 kStateInconsistent = 1;

/// Offset of the consistency record within the data section.
constexpr u32 consistency_offset(u32 data_section_size) {
  return data_section_size - kConsistencyWords * 4;
}

/// PRR selection policy (stage 2 of Fig. 7). The paper's allocator prefers
/// a region already configured with the requested task; the alternatives
/// exist for the policy ablation bench.
enum class AllocPolicy : u8 {
  kResidentFirst = 0,  // paper: reuse a configured region when possible
  kFirstFit,           // ignore residency: first idle compatible region
  kLruRegion,          // least-recently-granted idle compatible region
};

/// Instruction-count model of the manager's allocation work, calibrated so
/// the native execution time lands near the paper's 15 µs (Table III). The
/// counts stand for the table validation, bitstream header parsing, PRR
/// state evaluation, devcfg/PCAP driver work and bookkeeping a real
/// allocator performs per request.
struct ManagerCostModel {
  u32 insns_validate = 3000;       // argument + task-table validation
  u32 insns_select_per_prr = 700;  // per-PRR state evaluation
  u32 insns_hwmmu = 700;           // window computation + programming
  u32 insns_pcap = 1800;           // devcfg driver: header, DMA descriptors
  u32 insns_consistency = 800;     // register save + record construction
  u32 insns_table_update = 2200;   // task/PRR table writeback
  u32 insns_release = 700;
};

/// Retry-with-exponential-backoff policy for failed bitstream downloads,
/// plus per-PRR quarantine: a region whose downloads keep failing is pulled
/// from allocation for a cooldown instead of burning PCAP bandwidth.
struct RetryPolicy {
  u32 max_attempts = 4;            // total transfer attempts per grant
  double backoff_base_us = 100.0;  // delay before the first retry
  double backoff_factor = 2.0;     // delay multiplier per further retry
  u32 quarantine_threshold = 3;    // consecutive failures that quarantine
  double quarantine_us = 50'000.0; // cooldown before the region is retried
};

/// Per-PRR health, driven by PCAP transfer outcomes.
enum class PrrHealth : u8 {
  kHealthy = 0,
  kSuspect,      // just left quarantine; one more failure re-quarantines
  kQuarantined,  // excluded from allocation until the cooldown expires
};

/// Reconfiguration state of a client's latest grant (kHwTaskQuery answer).
enum class ReconfigOutcome : u8 {
  kInFlight = 0,  // a transfer (or a scheduled retry) is pending
  kReady,         // the task is configured in the region
  kFallback,      // retries exhausted: client should run in software
};

struct PrrTableEntry {
  nova::PdId client = nova::kInvalidPd;
  hwtask::TaskId task = hwtask::kInvalidTask;      // configured (or loading)
  bool reconfiguring = false;
  vaddr_t client_iface_va = 0;
  u32 irq_index = 0xFFFF'FFFFu;  // allocated PL IRQ source
  u64 last_grant_seq = 0;        // recency stamp for the LRU policy
  PrrHealth health = PrrHealth::kHealthy;
  u32 fail_streak = 0;  // consecutive failed downloads into this region
};

struct ManagerStats {
  u64 requests = 0;
  u64 grants_no_reconfig = 0;
  u64 grants_with_reconfig = 0;
  u64 busy_rejections = 0;
  u64 reclaims = 0;  // region taken from another client
  u64 releases = 0;
  u64 pcap_failures = 0;   // failed transfer attempts observed
  u64 retries = 0;         // re-launched transfers after a failure
  u64 quarantines = 0;     // healthy/suspect -> quarantined transitions
  u64 unquarantines = 0;   // cooldown expirations
  u64 fallbacks = 0;       // grants degraded to software after failures
  u64 sw_grants = 0;       // requests granted as software up front
};

class ManagerService final : public nova::HwService {
 public:
  explicit ManagerService(nova::Kernel& kernel,
                          const ManagerCostModel& costs = {});
  ~ManagerService() override;

  /// Create the manager's protection domain and register this service.
  /// Priority defaults to one above the guests' (paper §IV.E).
  nova::ProtectionDomain& install(u32 priority = 2);

  // nova::HwService
  nova::HcStatus handle_request(nova::GuestContext& ctx,
                                const nova::HwTaskRequest& req,
                                u32& result_flags) override;
  nova::HcStatus handle_release(nova::GuestContext& ctx, nova::PdId client,
                                hwtask::TaskId task) override;
  u32 query_reconfig(nova::PdId client) override;
  /// Kernel notification: `client`'s PD was destroyed. Host-side cleanup
  /// only — the guest context is gone, so nothing is charged; regions held
  /// by the client are reclaimed (task stays resident for warm re-dispatch)
  /// and all per-client bookkeeping is dropped.
  void handle_client_destroyed(nova::PdId client) override;

  void set_policy(AllocPolicy p) { policy_ = p; }
  AllocPolicy policy() const { return policy_; }
  void set_retry_policy(const RetryPolicy& p) { retry_ = p; }
  const RetryPolicy& retry_policy() const { return retry_; }
  PrrHealth prr_health(u32 idx) const { return prr_table_[idx].health; }

  /// Ablation (§IV.E stage 6): when set, the service waits for PCAP
  /// completion before returning instead of overlapping the transfer with
  /// the client's execution.
  void set_blocking_reconfig(bool on) { blocking_reconfig_ = on; }

  const PrrTableEntry& prr_entry(u32 idx) const { return prr_table_[idx]; }
  u32 num_prrs() const { return u32(prr_table_.size()); }
  const ManagerStats& stats() const { return stats_; }

  /// Live (client, interface VA) -> PRR bindings. A PRR table entry may keep
  /// a stale client/VA record after the same client re-grants through the
  /// same window (warm-region cache); this map is the authoritative view of
  /// which register-group page each client VA maps right now. Read-only —
  /// used by the fuzzer's ownership oracle.
  using IfaceBindings = std::map<std::pair<nova::PdId, vaddr_t>, u32>;
  const IfaceBindings& iface_bindings() const { return iface_map_; }

 private:
  /// One in-flight (or decided) reconfiguration per client.
  struct PendingReconfig {
    hwtask::TaskId task = hwtask::kInvalidTask;
    u32 prr = 0xFFFF'FFFFu;
    u32 attempts = 0;  // transfer attempts launched so far
    ReconfigOutcome outcome = ReconfigOutcome::kInFlight;
  };

  // Stage 2: pick a PRR for `task`; returns index or -1 when all busy.
  // `quarantine_blocked` reports that at least one idle compatible region
  // existed but was quarantined (caller grants software instead of Busy).
  int select_prr(nova::GuestContext& ctx, const hwtask::TaskInfo& info,
                 nova::PdId requester, bool& needs_reconfig,
                 bool& quarantine_blocked);
  // Retry/backoff/fallback machinery (observer-driven; see DESIGN.md §8).
  void on_pcap_complete(u32 prr, u32 task, bool ok);
  void retry_reconfig(nova::PdId client);
  void declare_fallback(nova::PdId client);
  void quarantine(u32 prr_idx);
  void unquarantine(u32 prr_idx);

  // `hwmgr.*` registry counters, interned once at construction.
  sim::CounterHandle c_sw_grants_, c_reconfig_success_, c_pcap_failures_,
      c_retries_, c_fallbacks_, c_quarantines_, c_unquarantines_;
  cycles_t backoff_cycles(u32 attempts_made) const;
  // Re-program the PCAP from an event context (no manager VA translation).
  bool launch_pcap_phys(u32 prr_idx, hwtask::TaskId task);
  // §IV.C consistency protocol when reclaiming from `old_client`.
  void reclaim_from(nova::GuestContext& ctx, u32 prr_idx);
  // Device programming helpers (PL global control page via the manager's
  // mapped window).
  void program_hwmmu(nova::GuestContext& ctx, u32 prr_idx, paddr_t base,
                     u32 size);
  u32 ensure_pl_irq(nova::GuestContext& ctx, u32 prr_idx);
  bool launch_pcap(nova::GuestContext& ctx, u32 prr_idx, hwtask::TaskId task);
  bool needs_reconfig_forces_pcap(u32 prr_idx, hwtask::TaskId task);
  // Table traffic: charge reads/writes against the manager's own memory.
  void touch_task_table(nova::GuestContext& ctx, hwtask::TaskId task);
  void touch_prr_table(nova::GuestContext& ctx, u32 prr_idx, bool write);

  nova::Kernel& kernel_;
  ManagerCostModel costs_;
  bool blocking_reconfig_ = false;
  AllocPolicy policy_ = AllocPolicy::kResidentFirst;
  RetryPolicy retry_;
  u64 grant_seq_ = 0;
  // Client whose transfer currently streams through the (single) PCAP port;
  // attributes completion-observer callbacks to the right grant.
  nova::PdId inflight_client_ = nova::kInvalidPd;
  std::map<nova::PdId, PendingReconfig> pending_;
  nova::ProtectionDomain* pd_ = nullptr;
  std::vector<PrrTableEntry> prr_table_;
  // Where each client's interface VA currently points. A VA can be remapped
  // across grants (same window, different PRR); unmap/skip decisions must
  // consult the *live* mapping, not the per-PRR history.
  std::map<std::pair<nova::PdId, vaddr_t>, u32> iface_map_;
  ManagerStats stats_;

  // Manager text footprint (in the manager image).
  cpu::CodeLayout code_;
  cpu::CodeRegion rg_handle_, rg_select_, rg_consistency_, rg_pcap_,
      rg_release_;

  // Table locations in the manager's virtual space.
  static constexpr vaddr_t kTaskTableVa = 0x2000;
  static constexpr vaddr_t kPrrTableVa = 0x3000;
  static constexpr vaddr_t kMailboxVa = 0x1000;

  util::Logger log_{"hwmgr"};
};

}  // namespace minova::hwmgr
