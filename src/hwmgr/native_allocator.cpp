#include "hwmgr/native_allocator.hpp"

#include "nova/kmem.hpp"
#include "pl/pcap.hpp"
#include "pl/prr_controller.hpp"

namespace minova::hwmgr {

using workloads::HwReqStatus;

NativeAllocator::NativeAllocator(Platform& platform, cpu::CodeLayout& code,
                                 const ManagerCostModel& costs)
    : platform_(platform),
      costs_(costs),
      prr_table_(platform.prr_controller().num_prrs()),
      table_pa_(nova::vm_phys_base(0) + 0x8000) {
  rg_alloc_ = code.place(1536);
  rg_tables_ = code.place(384);
}

void NativeAllocator::touch_tables(u32 task) {
  // Task table row + PRR table scan, as real memory traffic.
  auto& core = platform_.cpu();
  const paddr_t task_row = table_pa_ + (task % 64) * 32;
  for (u32 w = 0; w < 8; ++w) (void)core.vread32(task_row + w * 4);
  for (u32 prr = 0; prr < prr_table_.size(); ++prr)
    for (u32 w = 0; w < 8; ++w)
      (void)core.vread32(table_pa_ + 0x800 + prr * 32 + w * 4);
}

u32 NativeAllocator::ensure_irq(u32 prr) {
  if (prr_table_[prr].irq_index != 0xFFFF'FFFFu)
    return prr_table_[prr].irq_index;
  auto& core = platform_.cpu();
  const paddr_t glob = mem::kPrrGlobalRegsBase;
  (void)core.vwrite32(glob + pl::kGlobPrrSelect, prr);
  (void)core.vwrite32(glob + pl::kGlobIrqAlloc, 1);
  const auto r = core.vread32(glob + pl::kGlobIrqAlloc);
  prr_table_[prr].irq_index = r.value;
  if (r.value < mem::kNumPlIrqs)
    platform_.gic().enable_irq(mem::pl_irq_to_gic(r.value));
  return r.value;
}

NativeGrant NativeAllocator::request(u32 task_id, paddr_t data_pa,
                                     u32 data_size) {
  auto& core = platform_.cpu();
  const cycles_t t0 = core.clock().now();
  NativeGrant grant;

  core.exec_code(rg_alloc_);
  core.exec_code(rg_tables_);
  touch_tables(task_id);
  core.spend_insns(costs_.insns_validate);

  const hwtask::TaskInfo* info = platform_.task_library().find(task_id);
  const auto& prrctl = platform_.prr_controller();
  if (info == nullptr) return grant;

  // PRR selection: resident-task first, then any idle compatible region.
  int chosen = -1;
  bool reconfig = false;
  for (u32 prr : info->compatible_prrs) {
    // Same per-candidate evaluation as the manager service: table row plus
    // a live status register read.
    u32 v = 0;
    (void)platform_.bus().read32(prrctl.reg_group_pa(prr) + pl::kRegStatus, v);
    core.spend(core.caches().access_device());
    core.spend_insns(costs_.insns_select_per_prr);
    if (prrctl.prr(prr).busy || prrctl.prr(prr).reconfiguring) continue;
    if (prrctl.prr(prr).loaded_task == task_id) {
      chosen = int(prr);
      break;
    }
  }
  if (chosen < 0) {
    // Prefer an unowned idle region; fall back to reconfiguring an owned
    // one (same policy as the virtualized manager).
    int fallback = -1;
    for (u32 prr : info->compatible_prrs) {
      if (prrctl.prr(prr).busy || prrctl.prr(prr).reconfiguring) continue;
      if (!prr_table_[prr].owned) {
        chosen = int(prr);
        break;
      }
      if (fallback < 0) fallback = int(prr);
    }
    if (chosen < 0) chosen = fallback;
    reconfig = chosen >= 0;
  }
  if (chosen < 0) {
    grant.status = HwReqStatus::kBusy;
    exec_us_.add(platform_.clock().cycles_to_us(core.clock().now() - t0));
    return grant;
  }

  // hwMMU window (same static-logic programming as the virtualized path).
  core.spend_insns(costs_.insns_hwmmu);
  const paddr_t glob = mem::kPrrGlobalRegsBase;
  (void)core.vwrite32(glob + pl::kGlobPrrSelect, u32(chosen));
  (void)core.vwrite32(glob + pl::kGlobHwmmuBase, data_pa);
  (void)core.vwrite32(glob + pl::kGlobHwmmuSize, data_size);

  const u32 irq_idx = ensure_irq(u32(chosen));
  grant.pl_irq = irq_idx < mem::kNumPlIrqs ? mem::pl_irq_to_gic(irq_idx) : 0;

  if (reconfig && prrctl.prr(u32(chosen)).loaded_task != task_id) {
    const paddr_t pcap = mem::kDevcfgBase;
    const auto busy = core.vread32(pcap + pl::kPcapStatus);
    if (busy.value & pl::kPcapStatusBusy) {
      grant.status = HwReqStatus::kBusy;
      exec_us_.add(platform_.clock().cycles_to_us(core.clock().now() - t0));
      return grant;
    }
    core.spend_insns(costs_.insns_pcap);
    // The bitstream store is ordinary memory in the native system.
    (void)core.vwrite32(pcap + pl::kPcapSrcAddr, nova::kBitstreamBase);
    (void)core.vwrite32(pcap + pl::kPcapLen, info->bitstream_bytes);
    (void)core.vwrite32(pcap + pl::kPcapTarget, u32(chosen));
    (void)core.vwrite32(pcap + pl::kPcapTaskId, task_id);
    (void)core.vwrite32(pcap + pl::kPcapCtrl, 1);
    ++pcap_launches_;
    grant.status = HwReqStatus::kGrantedReconfig;
  } else {
    grant.status = HwReqStatus::kGranted;
  }
  prr_table_[u32(chosen)] = Entry{task_id, true, prr_table_[u32(chosen)].irq_index};
  // Table writeback.
  core.spend_insns(costs_.insns_table_update);
  for (u32 w = 0; w < 8; ++w)
    (void)core.vwrite32(table_pa_ + 0x800 + u32(chosen) * 32 + w * 4, 0);
  grant.prr = u32(chosen);
  exec_us_.add(platform_.clock().cycles_to_us(core.clock().now() - t0));
  return grant;
}

bool NativeAllocator::release(u32 task_id) {
  for (u32 prr = 0; prr < prr_table_.size(); ++prr) {
    if (prr_table_[prr].owned && prr_table_[prr].task == task_id &&
        !platform_.prr_controller().prr(prr).busy) {
      prr_table_[prr].owned = false;
      return true;
    }
  }
  return false;
}

}  // namespace minova::hwmgr
