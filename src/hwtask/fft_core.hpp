// FFT accelerator model (radix-2 decimation-in-time, complex float32).
//
// The paper's FFT hardware tasks span 256 to 8192 points and are "quite
// large", fitting only PRR1/PRR2. The behavioral model computes a real FFT
// over interleaved float32 I/Q samples; its latency model follows the
// pipelined-streaming Xilinx FFT core: roughly N transform cycles at the
// PL clock plus a fixed configuration overhead.
#pragma once

#include <complex>

#include "hwtask/ip_core.hpp"

namespace minova::hwtask {

class FftCore final : public IpCore {
 public:
  /// `points` must be a power of two in [256, 8192].
  explicit FftCore(u32 points);

  const std::string& name() const override { return name_; }
  std::vector<u8> process(std::span<const u8> in) override;
  cycles_t latency_cycles(u32 in_bytes) const override;

  u32 points() const { return points_; }

  /// Reference transform used by `process` and by tests for validation.
  static void fft_inplace(std::vector<std::complex<float>>& x);

  static constexpr u32 kBytesPerSample = 8;  // float32 I + float32 Q

 private:
  u32 points_;
  std::string name_;
};

}  // namespace minova::hwtask
