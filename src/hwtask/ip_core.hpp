// Behavioral hardware-task IP cores.
//
// Each reconfigurable accelerator of the paper's evaluation (FFT and QAM
// blocks, §V.B) is modeled as an `IpCore` that really computes its function
// on bytes DMA'd from the hardware task data section, plus a latency model
// for the PL-side processing time. The PRR controller executes whichever
// core is currently "configured" into a region.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace minova::hwtask {

class IpCore {
 public:
  virtual ~IpCore() = default;

  virtual const std::string& name() const = 0;

  /// Run one job. `in` is the raw input block from the client's hardware
  /// task data section; the return value is DMA'd back. Implementations
  /// must tolerate ill-sized input by truncating to whole elements — a real
  /// accelerator does not crash on a short burst.
  virtual std::vector<u8> process(std::span<const u8> in) = 0;

  /// PL processing latency (excluding DMA) for `in_bytes` of input.
  virtual cycles_t latency_cycles(u32 in_bytes) const = 0;
};

using IpCoreFactory = std::unique_ptr<IpCore> (*)();

}  // namespace minova::hwtask
