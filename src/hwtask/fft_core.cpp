#include "hwtask/fft_core.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <numbers>

#include "util/assert.hpp"

namespace minova::hwtask {

FftCore::FftCore(u32 points) : points_(points) {
  MINOVA_CHECK(is_pow2(points));
  MINOVA_CHECK(points >= 256 && points <= 8192);
  name_ = "FFT-" + std::to_string(points);
}

void FftCore::fft_inplace(std::vector<std::complex<float>>& x) {
  const std::size_t n = x.size();
  MINOVA_CHECK(is_pow2(n));
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  // Iterative Cooley-Tukey butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * std::numbers::pi / double(len);
    const std::complex<float> wlen(float(std::cos(ang)), float(std::sin(ang)));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<float> w(1.0f, 0.0f);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<float> u = x[i + k];
        const std::complex<float> v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<u8> FftCore::process(std::span<const u8> in) {
  // Truncate to whole samples and at most one transform frame; zero-pad a
  // short frame (streaming cores flush with zeros).
  const u32 samples = std::min<u32>(u32(in.size() / kBytesPerSample), points_);
  std::vector<std::complex<float>> x(points_, {0.0f, 0.0f});
  for (u32 i = 0; i < samples; ++i) {
    float re, im;
    std::memcpy(&re, in.data() + i * kBytesPerSample, 4);
    std::memcpy(&im, in.data() + i * kBytesPerSample + 4, 4);
    x[i] = {re, im};
  }
  fft_inplace(x);
  std::vector<u8> out(std::size_t(points_) * kBytesPerSample);
  for (u32 i = 0; i < points_; ++i) {
    const float re = x[i].real(), im = x[i].imag();
    std::memcpy(out.data() + i * kBytesPerSample, &re, 4);
    std::memcpy(out.data() + i * kBytesPerSample + 4, &im, 4);
  }
  return out;
}

cycles_t FftCore::latency_cycles(u32 in_bytes) const {
  // Streaming core at PL clock (~150 MHz -> 4.4 CPU cycles per PL cycle):
  // N cycles to stream in + N to transform (overlapped pipeline stages
  // amortize to ~2N PL cycles) + fixed start overhead.
  (void)in_bytes;
  const cycles_t pl_cycles = cycles_t(points_) * 2 + 64;
  return pl_cycles * 44 / 10;
}

}  // namespace minova::hwtask
