// Hardware-task consistency record (paper §IV.C / Fig. 5).
//
// Each client's hardware task data section reserves its tail for a record
// the Hardware Task Manager maintains: a state flag, the task id, and — when
// the region was taken away mid-use — the saved interface register contents.
// The guest (or the manager's resume path) restores execution from the saved
// registers; a kStateInconsistent flag means exactly one preemption save is
// outstanding and the region's registers are NOT what the client programmed.
//
// The layout is shared between the manager (writer), the preemption-resume
// path (reader), guests inspecting their own section, and the fuzzer's
// save/restore oracle — hence a header of its own next to the task library.
#pragma once

#include <array>

#include "util/types.hpp"

namespace minova::hwtask {

/// Record layout: [ state, task, regs[0..7] ] — 10 words at the section tail.
inline constexpr u32 kConsistencyWords = 2 + 8;
inline constexpr u32 kStateConsistent = 0;
inline constexpr u32 kStateInconsistent = 1;

/// Offset of the consistency record within a data section of `size` bytes.
constexpr u32 consistency_offset(u32 data_section_size) {
  return data_section_size - kConsistencyWords * 4;
}

/// In-memory image of the record, with pack/unpack mirroring the exact word
/// order the manager writes through svc_write_client_data.
struct ConsistencyRecord {
  u32 state = kStateConsistent;
  u32 task = 0;
  std::array<u32, 8> regs{};  // interface register group, ascending offsets

  std::array<u32, kConsistencyWords> pack() const {
    std::array<u32, kConsistencyWords> w{};
    w[0] = state;
    w[1] = task;
    for (u32 i = 0; i < 8; ++i) w[2 + i] = regs[i];
    return w;
  }

  static ConsistencyRecord unpack(const std::array<u32, kConsistencyWords>& w) {
    ConsistencyRecord r;
    r.state = w[0];
    r.task = w[1];
    for (u32 i = 0; i < 8; ++i) r.regs[i] = w[2 + i];
    return r;
  }
};

}  // namespace minova::hwtask
