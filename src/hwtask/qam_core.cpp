#include "hwtask/qam_core.hpp"

#include <bit>
#include <cmath>
#include <cstring>

#include "util/assert.hpp"

namespace minova::hwtask {

namespace {
/// Inverse Gray code: level index for raw (Gray-coded) bits, so adjacent
/// constellation points differ by exactly one input bit.
u32 gray_to_index(u32 g) {
  u32 v = g;
  for (u32 shift = 1; shift < 16; shift <<= 1) v ^= v >> shift;
  return v;
}

/// Average-energy normalization for a square M-QAM: E = 2(M-1)/3 per
/// dimension pair, where sqrt(M) PAM levels are +/-1, +/-3, ...
float norm_factor(u32 order) {
  return 1.0f / std::sqrt(2.0f * (float(order) - 1.0f) / 3.0f);
}
}  // namespace

QamCore::QamCore(u32 order) : order_(order) {
  MINOVA_CHECK(order == 4 || order == 16 || order == 64);
  bits_per_symbol_ = u32(std::countr_zero(order));
  name_ = "QAM-" + std::to_string(order);
}

void QamCore::map_symbol(u32 bits, u32 order, float& i_out, float& q_out) {
  const u32 bps = u32(std::countr_zero(order));
  const u32 half = bps / 2;
  const u32 side = 1u << half;  // sqrt(order) PAM levels per axis
  const u32 i_bits = bits & (side - 1);
  const u32 q_bits = bits >> half;
  // Gray demapping: bit pattern -> level index -> amplitude.
  const u32 i_idx = gray_to_index(i_bits);
  const u32 q_idx = gray_to_index(q_bits);
  const float scale = norm_factor(order);
  i_out = (2.0f * float(i_idx) - float(side - 1)) * scale;
  q_out = (2.0f * float(q_idx) - float(side - 1)) * scale;
}

std::vector<u8> QamCore::process(std::span<const u8> in) {
  const u32 total_bits = u32(in.size()) * 8;
  const u32 symbols = total_bits / bits_per_symbol_;
  std::vector<u8> out(std::size_t(symbols) * 8);
  u32 bitpos = 0;
  for (u32 s = 0; s < symbols; ++s) {
    u32 bits = 0;
    for (u32 b = 0; b < bits_per_symbol_; ++b, ++bitpos)
      bits |= u32((in[bitpos / 8] >> (bitpos % 8)) & 1u) << b;
    float iv, qv;
    map_symbol(bits, order_, iv, qv);
    std::memcpy(out.data() + s * 8, &iv, 4);
    std::memcpy(out.data() + s * 8 + 4, &qv, 4);
  }
  return out;
}

cycles_t QamCore::latency_cycles(u32 in_bytes) const {
  // One symbol per PL cycle after a short pipeline fill.
  const u32 symbols = in_bytes * 8 / bits_per_symbol_;
  const cycles_t pl_cycles = symbols + 16;
  return pl_cycles * 44 / 10;  // PL clock ~150 MHz vs CPU 660 MHz
}

}  // namespace minova::hwtask
