#include "hwtask/library.hpp"

#include "hwtask/fft_core.hpp"
#include "hwtask/qam_core.hpp"
#include "util/assert.hpp"

namespace minova::hwtask {

void TaskLibrary::add(TaskInfo info) {
  MINOVA_CHECK(info.id != kInvalidTask);
  MINOVA_CHECK_MSG(tasks_.find(info.id) == tasks_.end(), "duplicate task id");
  MINOVA_CHECK(info.make_core != nullptr);
  MINOVA_CHECK(!info.compatible_prrs.empty());
  tasks_.emplace(info.id, std::move(info));
}

const TaskInfo* TaskLibrary::find(TaskId id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

std::unique_ptr<IpCore> TaskLibrary::instantiate(TaskId id) const {
  const TaskInfo* info = find(id);
  MINOVA_CHECK_MSG(info != nullptr, "unknown task id");
  return info->make_core();
}

std::vector<TaskId> TaskLibrary::ids() const {
  std::vector<TaskId> out;
  out.reserve(tasks_.size());
  for (const auto& [id, _] : tasks_) out.push_back(id);
  return out;
}

TaskLibrary TaskLibrary::evaluation_set(u32 num_large, u32 num_small) {
  MINOVA_CHECK(num_large >= 1);
  TaskLibrary lib;
  std::vector<u32> large_prrs;
  for (u32 i = 0; i < num_large; ++i) large_prrs.push_back(i);
  std::vector<u32> all_prrs = large_prrs;          // QAM fits everywhere
  for (u32 i = 0; i < num_small; ++i) all_prrs.push_back(num_large + i);

  struct FftSpec { TaskId id; u32 points; u32 bit_kib; };
  // Partial-bitstream sizes grow with the logic the core consumes; values
  // are in the range of real 7-series partial bitstreams for these cores.
  const FftSpec ffts[] = {
      {kFft256, 256, 310},  {kFft512, 512, 350},   {kFft1024, 1024, 420},
      {kFft2048, 2048, 500}, {kFft4096, 4096, 610}, {kFft8192, 8192, 760},
  };
  for (const auto& f : ffts) {
    lib.add(TaskInfo{
        .id = f.id,
        .name = "FFT-" + std::to_string(f.points),
        .bitstream_bytes = f.bit_kib * kKiB,
        .compatible_prrs = large_prrs,
        .make_core = [points = f.points] {
          return std::unique_ptr<IpCore>(std::make_unique<FftCore>(points));
        }});
  }

  struct QamSpec { TaskId id; u32 order; u32 bit_kib; };
  const QamSpec qams[] = {
      {kQam4, 4, 120}, {kQam16, 16, 140}, {kQam64, 64, 165}};
  for (const auto& q : qams) {
    lib.add(TaskInfo{
        .id = q.id,
        .name = "QAM-" + std::to_string(q.order),
        .bitstream_bytes = q.bit_kib * kKiB,
        .compatible_prrs = all_prrs,
        .make_core = [order = q.order] {
          return std::unique_ptr<IpCore>(std::make_unique<QamCore>(order));
        }});
  }
  return lib;
}

}  // namespace minova::hwtask
