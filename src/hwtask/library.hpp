// Hardware-task library: the catalogue of accelerator bitstreams.
//
// Mirrors the paper's Hardware Task Manager inputs (§IV.B): for each task,
// a unique ID, the address/size of its .bit file in DRAM, the expected
// reconfiguration latency and the list of PRRs able to host it. The
// canonical evaluation set (§V.B) is FFT-256..8192 (large: PRR1/PRR2 only)
// and QAM-4/16/64 (small: any PRR).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "hwtask/ip_core.hpp"
#include "util/types.hpp"

namespace minova::hwtask {

using TaskId = u32;
inline constexpr TaskId kInvalidTask = 0;

struct TaskInfo {
  TaskId id = kInvalidTask;
  std::string name;
  u32 bitstream_bytes = 0;
  std::vector<u32> compatible_prrs;  // PRR indices able to host this task
  std::function<std::unique_ptr<IpCore>()> make_core;
};

class TaskLibrary {
 public:
  /// Register a task; IDs must be unique and nonzero.
  void add(TaskInfo info);

  const TaskInfo* find(TaskId id) const;
  std::unique_ptr<IpCore> instantiate(TaskId id) const;

  std::size_t size() const { return tasks_.size(); }
  std::vector<TaskId> ids() const;

  /// Builds the paper's evaluation task set. PRR indices follow §V.B:
  /// PRR0/PRR1 are large (FFT-capable), PRR2/PRR3 small (QAM only).
  /// (The paper numbers them 1-4; we use 0-based indices.)
  static TaskLibrary paper_evaluation_set() { return evaluation_set(2, 2); }

  /// Generalized floorplan: `num_large` FFT-capable regions at indices
  /// [0, num_large), `num_small` QAM-only regions after them. Used by the
  /// PRR-count extension bench.
  static TaskLibrary evaluation_set(u32 num_large, u32 num_small);

  // Task IDs of the canonical set, stable across runs.
  static constexpr TaskId kFft256 = 1;
  static constexpr TaskId kFft512 = 2;
  static constexpr TaskId kFft1024 = 3;
  static constexpr TaskId kFft2048 = 4;
  static constexpr TaskId kFft4096 = 5;
  static constexpr TaskId kFft8192 = 6;
  static constexpr TaskId kQam4 = 7;
  static constexpr TaskId kQam16 = 8;
  static constexpr TaskId kQam64 = 9;

 private:
  std::map<TaskId, TaskInfo> tasks_;
};

}  // namespace minova::hwtask
