// QAM mapper accelerator model (QAM-4 / QAM-16 / QAM-64).
//
// Maps an input bit stream onto Gray-coded square-constellation I/Q symbols
// (float32 pairs), normalized to unit average energy — the digital-
// communication workload the paper's motivation (TDS-OFDM work, ref [2])
// draws from. Small cores: they fit any of the four PRRs.
#pragma once

#include "hwtask/ip_core.hpp"

namespace minova::hwtask {

class QamCore final : public IpCore {
 public:
  /// `order` in {4, 16, 64}.
  explicit QamCore(u32 order);

  const std::string& name() const override { return name_; }
  std::vector<u8> process(std::span<const u8> in) override;
  cycles_t latency_cycles(u32 in_bytes) const override;

  u32 order() const { return order_; }
  u32 bits_per_symbol() const { return bits_per_symbol_; }

  /// Map `bits` (LSB-first within each symbol) to one I/Q pair. Exposed for
  /// the software reference implementation and tests.
  static void map_symbol(u32 bits, u32 order, float& i_out, float& q_out);

 private:
  u32 order_;
  u32 bits_per_symbol_;
  std::string name_;
};

}  // namespace minova::hwtask
