// Partially Reconfigurable Region descriptors.
//
// The FPGA fabric is floorplanned at initialization into static logic plus
// a fixed set of PRRs (paper §IV.A). Each PRR has a resource budget (which
// determines which tasks fit — FFT cores only fit the two large regions)
// and a register group placed on its own 4 KB page so Mini-NOVA can map it
// into exactly one client VM at a time (§IV.C).
#pragma once

#include <memory>
#include <string>

#include "hwtask/ip_core.hpp"
#include "hwtask/library.hpp"
#include "util/types.hpp"

namespace minova::pl {

struct PrrResources {
  u32 luts = 0;
  u32 brams = 0;
  u32 dsps = 0;
};

struct PrrConfig {
  std::string name;
  PrrResources resources;
};

/// Run-time state of one PRR inside the controller.
struct PrrState {
  hwtask::TaskId loaded_task = hwtask::kInvalidTask;
  std::unique_ptr<hwtask::IpCore> core;  // configured accelerator
  bool busy = false;           // a job is in flight
  bool reconfiguring = false;  // PCAP transfer targeting this region

  // hwMMU window: the client VM's hardware task data section. All DMA from
  // the hosted task must fall inside [base, base+size).
  paddr_t hwmmu_base = 0;
  u32 hwmmu_size = 0;
  u64 hwmmu_violations = 0;

  // Allocated PL interrupt index (0..15) or kNoIrq.
  static constexpr u32 kNoIrq = 0xFFFF'FFFFu;
  u32 irq_index = kNoIrq;

  // Job registers (programmed by the client through the register group).
  u32 ctrl = 0;
  u32 src_addr = 0;
  u32 src_len = 0;
  u32 dst_addr = 0;
  u32 dst_len = 0;  // read-only result: bytes produced
  bool done = false;
  bool error = false;
  u64 jobs_completed = 0;
};

/// Generalized floorplan: `num_large` FFT-capable regions followed by
/// `num_small` QAM-class regions.
inline std::vector<PrrConfig> make_floorplan(u32 num_large, u32 num_small) {
  std::vector<PrrConfig> plan;
  for (u32 i = 0; i < num_large + num_small; ++i) {
    const bool large = i < num_large;
    plan.push_back(PrrConfig{
        .name = "PRR" + std::to_string(i + 1),
        .resources = large ? PrrResources{5200, 24, 40}
                           : PrrResources{1600, 6, 8}});
  }
  return plan;
}

/// Default 4-region floorplan of the evaluation platform (paper §V.B): two
/// large regions able to host FFT cores, two small ones for QAM tasks.
inline std::vector<PrrConfig> paper_floorplan() { return make_floorplan(2, 2); }

}  // namespace minova::pl
