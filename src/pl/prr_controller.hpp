// PRR controller — the static logic of the PL (paper §IV.A/§IV.C/§IV.D).
//
// Exposes one register group per PRR, each on its own 4 KB page of the
// AXI_GP0 window, plus a manager-only global control page. Responsibilities
// modeled from the paper:
//   * hardware-task execution state machine (start -> DMA in -> compute ->
//     DMA out -> done/IRQ) with AXI_HP DMA timing,
//   * the hwMMU: every DMA address is checked against the client VM's
//     hardware task data section; out-of-section access is blocked and
//     counted (§IV.C),
//   * PL interrupt management: allocating the 16 IRQF2P sources to tasks
//     (§IV.D),
//   * accepting bitstream loads from the PCAP engine.
//
// Register group layout (word offsets within the PRR's page):
//   0x00 CTRL     w   bit0 START, bit1 IRQ_EN
//   0x04 STATUS   r/w1c  bit0 BUSY, bit1 DONE, bit2 ERROR, bit3 LOADED,
//                        bit4 RECONFIGURING (write 1 to bits1/2 to clear)
//   0x08 TASK_ID  r   currently configured task
//   0x0C SRC_ADDR rw  physical input address (inside the data section)
//   0x10 SRC_LEN  rw
//   0x14 DST_ADDR rw  physical output address (inside the data section)
//   0x18 DST_LEN  r   bytes produced by the last job
//   0x1C IRQ_NUM  r   allocated PL IRQ index (0..15) or ~0
//
// Global control page (manager-only; offsets):
//   0x00 PRR_SELECT rw
//   0x04 HWMMU_BASE w   for the selected PRR
//   0x08 HWMMU_SIZE w
//   0x0C IRQ_ALLOC  rw  write anything: allocate; read result
//   0x10 IRQ_FREE   w   release the selected PRR's IRQ source
//   0x14 UNLOAD     w   drop the configured task (region goes dark)
//   0x18 VIOLATIONS r   hwMMU violation count of the selected PRR
#pragma once

#include <array>
#include <vector>

#include "irq/gic.hpp"
#include "mem/bus.hpp"
#include "pl/prr.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "util/log.hpp"

namespace minova::sim {
class FaultInjector;
}

namespace minova::pl {

// Register offsets (byte) within a PRR register group page.
inline constexpr u32 kRegCtrl = 0x00;
inline constexpr u32 kRegStatus = 0x04;
inline constexpr u32 kRegTaskId = 0x08;
inline constexpr u32 kRegSrcAddr = 0x0C;
inline constexpr u32 kRegSrcLen = 0x10;
inline constexpr u32 kRegDstAddr = 0x14;
inline constexpr u32 kRegDstLen = 0x18;
inline constexpr u32 kRegIrqNum = 0x1C;

// CTRL bits
inline constexpr u32 kCtrlStart = 1u << 0;
inline constexpr u32 kCtrlIrqEn = 1u << 1;
// STATUS bits
inline constexpr u32 kStatusBusy = 1u << 0;
inline constexpr u32 kStatusDone = 1u << 1;
inline constexpr u32 kStatusError = 1u << 2;
inline constexpr u32 kStatusLoaded = 1u << 3;
inline constexpr u32 kStatusReconfiguring = 1u << 4;

// Global page offsets.
inline constexpr u32 kGlobPrrSelect = 0x00;
inline constexpr u32 kGlobHwmmuBase = 0x04;
inline constexpr u32 kGlobHwmmuSize = 0x08;
inline constexpr u32 kGlobIrqAlloc = 0x0C;
inline constexpr u32 kGlobIrqFree = 0x10;
inline constexpr u32 kGlobUnload = 0x14;
inline constexpr u32 kGlobViolations = 0x18;

struct PrrControllerConfig {
  // AXI_HP DMA: fixed burst setup plus per-byte streaming cost
  // (~1.1 GB/s against the 660 MHz CPU clock).
  u32 dma_setup_cycles = 200;
  u32 dma_cycles_per_8_bytes = 5;
};

class PrrController final : public mem::MmioDevice {
 public:
  PrrController(sim::Clock& clock, sim::EventQueue& events, irq::Gic& gic,
                mem::Bus& bus, const hwtask::TaskLibrary& library,
                std::vector<PrrConfig> floorplan,
                const PrrControllerConfig& cfg = {});

  // MmioDevice: offset is relative to kPrrCtrlBase; pages 0..N-1 are the
  // PRR register groups, the page at kPrrMaxRegions is the global page.
  u32 mmio_read(u32 offset) override;
  void mmio_write(u32 offset, u32 value) override;
  const char* mmio_name() const override { return "prr-controller"; }

  u32 num_prrs() const { return u32(prrs_.size()); }
  const PrrState& prr(u32 idx) const { return prrs_[idx]; }
  const PrrConfig& prr_config(u32 idx) const { return configs_[idx]; }

  /// Physical base address of PRR `idx`'s register group page.
  paddr_t reg_group_pa(u32 idx) const;

  /// Called by the PCAP engine when a bitstream download completes. Returns
  /// false when the region misses its reconfiguration deadline (injected
  /// kPrrReconfigTimeout): the PRR is left dark with STATUS.ERROR set.
  bool load_task(u32 prr_idx, hwtask::TaskId task);
  /// Called by the PCAP engine when a transfer starts targeting this PRR.
  void begin_reconfigure(u32 prr_idx);
  /// Called by the PCAP engine when a started transfer aborts: the region's
  /// partial contents are undefined, so it goes dark with STATUS.ERROR.
  void abort_reconfigure(u32 prr_idx);

  /// Restore a preempted task's programmable register state (the §IV.C
  /// consistency record, saved by the manager before eviction). Writes the
  /// stored fields directly — no START pulse, no status side effects — so a
  /// resumed client sees exactly the registers it had programmed. `regs` is
  /// the 8-word register-group image in ascending offset order
  /// (CTRL..IRQ_NUM); only the client-programmable words are applied.
  void restore_registers(u32 idx, const std::array<u32, 8>& regs);

  /// Optional fault injector (owned by the platform); null disables.
  void attach_fault_injector(sim::FaultInjector* fault) { fault_ = fault; }

  u64 reconfig_timeouts() const { return reconfig_timeouts_; }

  /// GIC SPI number for a PL IRQ index.
  static u32 gic_irq_for(u32 pl_index) { return mem::pl_irq_to_gic(pl_index); }

  u64 total_jobs() const;
  u64 total_violations() const;

 private:
  u32 prr_reg_read(u32 idx, u32 reg);
  void prr_reg_write(u32 idx, u32 reg, u32 value);
  u32 global_read(u32 reg);
  void global_write(u32 reg, u32 value);

  void start_job(u32 idx);
  void complete_job(u32 idx);
  bool hwmmu_check(PrrState& p, paddr_t addr, u32 len);

  sim::Clock& clock_;
  sim::EventQueue& events_;
  irq::Gic& gic_;
  mem::Bus& bus_;
  const hwtask::TaskLibrary& library_;
  PrrControllerConfig cfg_;
  std::vector<PrrConfig> configs_;
  std::vector<PrrState> prrs_;
  u32 prr_select_ = 0;
  u32 irq_alloc_result_ = PrrState::kNoIrq;
  std::vector<bool> irq_in_use_;
  sim::FaultInjector* fault_ = nullptr;
  u64 reconfig_timeouts_ = 0;
  util::Logger log_{"pl.prrctl"};
};

}  // namespace minova::pl
