#include "pl/pcap.hpp"

#include "mem/address_map.hpp"

namespace minova::pl {

Pcap::Pcap(sim::Clock& clock, sim::EventQueue& events, irq::Gic& gic,
           PrrController& controller, const PcapConfig& cfg)
    : clock_(clock),
      events_(events),
      gic_(gic),
      controller_(controller),
      cfg_(cfg) {}

u32 Pcap::mmio_read(u32 offset) {
  switch (offset) {
    case kPcapStatus: {
      u32 s = 0;
      if (busy_) s |= kPcapStatusBusy;
      if (done_) s |= kPcapStatusDone;
      if (error_) s |= kPcapStatusError;
      return s;
    }
    case kPcapSrcAddr: return src_addr_;
    case kPcapLen: return len_;
    case kPcapTarget: return target_;
    case kPcapTaskId: return task_id_;
    default: return 0;
  }
}

void Pcap::mmio_write(u32 offset, u32 value) {
  switch (offset) {
    case kPcapCtrl:
      if (value & 1u) start();
      break;
    case kPcapStatus:
      if (value & kPcapStatusDone) done_ = false;
      if (value & kPcapStatusError) error_ = false;
      break;
    case kPcapSrcAddr: src_addr_ = value; break;
    case kPcapLen: len_ = value; break;
    case kPcapTarget: target_ = value; break;
    case kPcapTaskId: task_id_ = value; break;
    default: break;
  }
}

void Pcap::start() {
  if (busy_ || len_ == 0 || target_ >= controller_.num_prrs()) {
    error_ = true;
    return;
  }
  if (controller_.prr(target_).busy) {
    // Refuse to reconfigure a region with a job in flight.
    error_ = true;
    return;
  }
  busy_ = true;
  done_ = false;
  error_ = false;
  controller_.begin_reconfigure(target_);
  log_.debug("PCAP transfer start: task %u -> PRR%u (%u bytes)", task_id_,
             target_, len_);
  events_.schedule_at(clock_.now() + transfer_cycles(len_),
                      [this] { complete(); });
}

void Pcap::complete() {
  busy_ = false;
  done_ = true;
  ++transfers_completed_;
  controller_.load_task(target_, task_id_);
  gic_.raise(mem::kIrqDevcfg);
}

}  // namespace minova::pl
