#include "pl/pcap.hpp"

#include "mem/address_map.hpp"
#include "sim/fault.hpp"

namespace minova::pl {

Pcap::Pcap(sim::Clock& clock, sim::EventQueue& events, irq::Gic& gic,
           PrrController& controller, const PcapConfig& cfg)
    : clock_(clock),
      events_(events),
      gic_(gic),
      controller_(controller),
      cfg_(cfg) {}

u32 Pcap::mmio_read(u32 offset) {
  switch (offset) {
    case kPcapStatus: {
      u32 s = 0;
      if (busy_) s |= kPcapStatusBusy;
      if (done_) s |= kPcapStatusDone;
      if (error_) s |= kPcapStatusError;
      return s;
    }
    case kPcapSrcAddr: return src_addr_;
    case kPcapLen: return len_;
    case kPcapTarget: return target_;
    case kPcapTaskId: return task_id_;
    default: return 0;
  }
}

void Pcap::mmio_write(u32 offset, u32 value) {
  switch (offset) {
    case kPcapCtrl:
      if (value & 1u) start();
      break;
    case kPcapStatus:
      if (value & kPcapStatusDone) done_ = false;
      if (value & kPcapStatusError) error_ = false;
      break;
    case kPcapSrcAddr: src_addr_ = value; break;
    case kPcapLen: len_ = value; break;
    case kPcapTarget: target_ = value; break;
    case kPcapTaskId: task_id_ = value; break;
    default: break;
  }
}

void Pcap::start() {
  if (busy_ || len_ == 0 || target_ >= controller_.num_prrs()) {
    error_ = true;
    return;
  }
  if (controller_.prr(target_).busy) {
    // Refuse to reconfigure a region with a job in flight.
    error_ = true;
    return;
  }
  busy_ = true;
  done_ = false;
  error_ = false;
  if (fault_ != nullptr &&
      fault_->should_fail(sim::FaultSite::kPrrRegionBusy)) {
    // Static logic spuriously NAKs the handshake: the abort surfaces after
    // the DevC setup time, before any frame reaches the region.
    ++region_busy_errors_;
    events_.schedule_at(clock_.now() + cfg_.setup_cycles,
                        [this] { fail(/*begun=*/false, "region-busy NAK"); });
    return;
  }
  controller_.begin_reconfigure(target_);
  log_.debug("PCAP transfer start: task %u -> PRR%u (%u bytes)", task_id_,
             target_, len_);
  cycles_t latency = transfer_cycles(len_);
  if (fault_ != nullptr && fault_->should_fail(sim::FaultSite::kPcapStall)) {
    ++stalls_;
    latency += fault_->stall_cycles();
  }
  events_.schedule_at(clock_.now() + latency, [this] { complete(); });
}

void Pcap::complete() {
  if (fault_ != nullptr) {
    // Both sites are probed in a fixed order every transfer so each stream
    // position stays a pure function of that site's own attempt index.
    const bool crc = fault_->should_fail(sim::FaultSite::kPcapCrc);
    const bool xfer = fault_->should_fail(sim::FaultSite::kPcapTransfer);
    if (crc || xfer) {
      if (crc) ++crc_errors_;
      if (xfer && !crc) ++transfer_errors_;
      fail(/*begun=*/true, crc ? "bitstream CRC mismatch" : "DMA abort");
      return;
    }
  }
  if (!controller_.load_task(target_, task_id_)) {
    // Reconfiguration timeout: the region stayed dark. No devcfg IRQ — the
    // manager's completion observer is the failure path.
    busy_ = false;
    done_ = false;
    error_ = true;
    if (observer_) observer_(target_, task_id_, false);
    return;
  }
  busy_ = false;
  done_ = true;
  ++transfers_completed_;
  gic_.raise(mem::kIrqDevcfg);
  if (observer_) observer_(target_, task_id_, true);
}

void Pcap::fail(bool begun, const char* why) {
  busy_ = false;
  done_ = false;
  error_ = true;
  log_.debug("PCAP transfer failed: task %u -> PRR%u (%s)", task_id_, target_,
             why);
  if (begun) controller_.abort_reconfigure(target_);
  if (observer_) observer_(target_, task_id_, false);
}

}  // namespace minova::pl
