// PCAP (Processor Configuration Access Port) model — the devcfg engine that
// downloads partial bitstreams from DRAM into a PRR (paper §IV.A/§IV.E).
//
// Behaviour modeled:
//   * one transfer at a time (BUSY while streaming),
//   * latency proportional to the bitstream size at ~145 MB/s, the
//     practical PCAP throughput on Zynq-7000,
//   * completion raises the devcfg IRQ so the launching VM can overlap the
//     reconfiguration with its own work (§IV.E stage 6), and notifies the
//     PRR controller to mark the region configured.
//
// Register map (word offsets):
//   0x00 CTRL     w   bit0 START
//   0x04 STATUS   r/w1c  bit0 BUSY, bit1 DONE, bit2 ERROR
//   0x08 SRC_ADDR rw  physical address of the .bit image
//   0x0C LEN      rw  bytes
//   0x10 TARGET   rw  PRR index
//   0x14 TASK_ID  rw  task carried by the bitstream (models the header)
#pragma once

#include <functional>

#include "irq/gic.hpp"
#include "mem/bus.hpp"
#include "pl/prr_controller.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "util/log.hpp"

namespace minova::pl {

inline constexpr u32 kPcapCtrl = 0x00;
inline constexpr u32 kPcapStatus = 0x04;
inline constexpr u32 kPcapSrcAddr = 0x08;
inline constexpr u32 kPcapLen = 0x0C;
inline constexpr u32 kPcapTarget = 0x10;
inline constexpr u32 kPcapTaskId = 0x14;

inline constexpr u32 kPcapStatusBusy = 1u << 0;
inline constexpr u32 kPcapStatusDone = 1u << 1;
inline constexpr u32 kPcapStatusError = 1u << 2;

struct PcapConfig {
  /// CPU cycles per byte transferred: 660 MHz / 145 MB/s ~= 4.55.
  double cycles_per_byte = 4.55;
  u32 setup_cycles = 1200;  // DevC DMA programming + header processing
};

class Pcap final : public mem::MmioDevice {
 public:
  /// Notified at the end of every transfer attempt — success or failure —
  /// so the hardware task manager can drive its retry policy without
  /// polling. Failed transfers do NOT raise the devcfg IRQ (the region is
  /// not configured); the observer is the only failure signal.
  using CompletionObserver = std::function<void(u32 prr, u32 task, bool ok)>;

  Pcap(sim::Clock& clock, sim::EventQueue& events, irq::Gic& gic,
       PrrController& controller, const PcapConfig& cfg = {});

  u32 mmio_read(u32 offset) override;
  void mmio_write(u32 offset, u32 value) override;
  const char* mmio_name() const override { return "pcap"; }

  bool busy() const { return busy_; }
  u64 transfers_completed() const { return transfers_completed_; }

  /// Optional fault injector (owned by the platform); null disables.
  void attach_fault_injector(sim::FaultInjector* fault) { fault_ = fault; }
  void set_completion_observer(CompletionObserver obs) {
    observer_ = std::move(obs);
  }

  u64 crc_errors() const { return crc_errors_; }
  u64 transfer_errors() const { return transfer_errors_; }
  u64 stalls() const { return stalls_; }
  u64 region_busy_errors() const { return region_busy_errors_; }

  /// Latency a transfer of `bytes` will take (for tests/benches).
  cycles_t transfer_cycles(u32 bytes) const {
    return cfg_.setup_cycles + cycles_t(double(bytes) * cfg_.cycles_per_byte);
  }

 private:
  void start();
  void complete();
  void fail(bool begun, const char* why);

  sim::Clock& clock_;
  sim::EventQueue& events_;
  irq::Gic& gic_;
  PrrController& controller_;
  PcapConfig cfg_;

  bool busy_ = false;
  bool done_ = false;
  bool error_ = false;
  u32 src_addr_ = 0;
  u32 len_ = 0;
  u32 target_ = 0;
  u32 task_id_ = 0;
  u64 transfers_completed_ = 0;
  sim::FaultInjector* fault_ = nullptr;
  CompletionObserver observer_;
  u64 crc_errors_ = 0;
  u64 transfer_errors_ = 0;
  u64 stalls_ = 0;
  u64 region_busy_errors_ = 0;
  util::Logger log_{"pl.pcap"};
};

}  // namespace minova::pl
