#include "pl/prr_controller.hpp"

#include <algorithm>

#include "mem/address_map.hpp"
#include "sim/fault.hpp"
#include "util/assert.hpp"

namespace minova::pl {

PrrController::PrrController(sim::Clock& clock, sim::EventQueue& events,
                             irq::Gic& gic, mem::Bus& bus,
                             const hwtask::TaskLibrary& library,
                             std::vector<PrrConfig> floorplan,
                             const PrrControllerConfig& cfg)
    : clock_(clock),
      events_(events),
      gic_(gic),
      bus_(bus),
      library_(library),
      cfg_(cfg),
      configs_(std::move(floorplan)),
      irq_in_use_(mem::kNumPlIrqs, false) {
  MINOVA_CHECK(!configs_.empty());
  MINOVA_CHECK(configs_.size() <= mem::kPrrMaxRegions);
  prrs_.resize(configs_.size());
}

paddr_t PrrController::reg_group_pa(u32 idx) const {
  MINOVA_CHECK(idx < prrs_.size());
  return mem::kPrrCtrlBase + idx * mem::kPrrRegGroupStride;
}

u32 PrrController::mmio_read(u32 offset) {
  const u32 page = offset / mem::kPrrRegGroupStride;
  const u32 reg = offset % mem::kPrrRegGroupStride;
  if (page < prrs_.size()) return prr_reg_read(page, reg);
  if (page == mem::kPrrMaxRegions) return global_read(reg);
  log_.warn("read from unmapped PL page %u", page);
  return 0;
}

void PrrController::mmio_write(u32 offset, u32 value) {
  const u32 page = offset / mem::kPrrRegGroupStride;
  const u32 reg = offset % mem::kPrrRegGroupStride;
  if (page < prrs_.size()) {
    prr_reg_write(page, reg, value);
  } else if (page == mem::kPrrMaxRegions) {
    global_write(reg, value);
  } else {
    log_.warn("write to unmapped PL page %u", page);
  }
}

u32 PrrController::prr_reg_read(u32 idx, u32 reg) {
  PrrState& p = prrs_[idx];
  switch (reg) {
    case kRegCtrl: return p.ctrl;
    case kRegStatus: {
      u32 s = 0;
      if (p.busy) s |= kStatusBusy;
      if (p.done) s |= kStatusDone;
      if (p.error) s |= kStatusError;
      if (p.loaded_task != hwtask::kInvalidTask) s |= kStatusLoaded;
      if (p.reconfiguring) s |= kStatusReconfiguring;
      return s;
    }
    case kRegTaskId: return p.loaded_task;
    case kRegSrcAddr: return p.src_addr;
    case kRegSrcLen: return p.src_len;
    case kRegDstAddr: return p.dst_addr;
    case kRegDstLen: return p.dst_len;
    case kRegIrqNum: return p.irq_index;
    default: return 0;
  }
}

void PrrController::prr_reg_write(u32 idx, u32 reg, u32 value) {
  PrrState& p = prrs_[idx];
  switch (reg) {
    case kRegCtrl:
      p.ctrl = value & kCtrlIrqEn;  // START is a pulse, not stored
      if (value & kCtrlStart) start_job(idx);
      break;
    case kRegStatus:
      if (value & kStatusDone) p.done = false;
      if (value & kStatusError) p.error = false;
      break;
    case kRegSrcAddr: p.src_addr = value; break;
    case kRegSrcLen: p.src_len = value; break;
    case kRegDstAddr: p.dst_addr = value; break;
    default:
      break;  // read-only or unknown registers ignore writes
  }
}

u32 PrrController::global_read(u32 reg) {
  const PrrState& p = prrs_[std::min<u32>(prr_select_, num_prrs() - 1)];
  switch (reg) {
    case kGlobPrrSelect: return prr_select_;
    case kGlobIrqAlloc: return irq_alloc_result_;
    case kGlobViolations: return u32(p.hwmmu_violations);
    default: return 0;
  }
}

void PrrController::global_write(u32 reg, u32 value) {
  if (reg == kGlobPrrSelect) {
    MINOVA_CHECK_MSG(value < num_prrs(), "PRR_SELECT out of range");
    prr_select_ = value;
    return;
  }
  PrrState& p = prrs_[prr_select_];
  switch (reg) {
    case kGlobHwmmuBase:
      p.hwmmu_base = value;
      break;
    case kGlobHwmmuSize:
      p.hwmmu_size = value;
      break;
    case kGlobIrqAlloc: {
      (void)value;
      if (p.irq_index != PrrState::kNoIrq) {
        irq_alloc_result_ = p.irq_index;  // idempotent
        return;
      }
      irq_alloc_result_ = PrrState::kNoIrq;
      for (u32 i = 0; i < irq_in_use_.size(); ++i) {
        if (!irq_in_use_[i]) {
          irq_in_use_[i] = true;
          p.irq_index = i;
          irq_alloc_result_ = i;
          break;
        }
      }
      break;
    }
    case kGlobIrqFree:
      if (p.irq_index != PrrState::kNoIrq) {
        irq_in_use_[p.irq_index] = false;
        p.irq_index = PrrState::kNoIrq;
      }
      break;
    case kGlobUnload:
      MINOVA_CHECK_MSG(!p.busy, "unloading a busy PRR");
      p.loaded_task = hwtask::kInvalidTask;
      p.core.reset();
      p.done = p.error = false;
      break;
    default:
      break;
  }
}

bool PrrController::hwmmu_check(PrrState& p, paddr_t addr, u32 len) {
  const bool inside = p.hwmmu_size > 0 && addr >= p.hwmmu_base &&
                      u64(addr) + len <= u64(p.hwmmu_base) + p.hwmmu_size;
  if (!inside) {
    ++p.hwmmu_violations;
    log_.debug("hwMMU violation: [%08x,+%u) outside [%08x,+%u)", addr, len,
               p.hwmmu_base, p.hwmmu_size);
  }
  return inside;
}

void PrrController::start_job(u32 idx) {
  PrrState& p = prrs_[idx];
  if (p.busy || p.reconfiguring || p.core == nullptr) {
    p.error = true;
    return;
  }
  // The hwMMU validates the input window up front; the output window is
  // validated at writeback when the produced length is known.
  if (!hwmmu_check(p, p.src_addr, p.src_len)) {
    p.error = true;
    p.done = true;  // job "finishes" immediately with error
    return;
  }
  p.busy = true;
  p.done = false;
  p.error = false;
  const cycles_t dma_in =
      cfg_.dma_setup_cycles + cycles_t(p.src_len) / 8 * cfg_.dma_cycles_per_8_bytes;
  const cycles_t compute = p.core->latency_cycles(p.src_len);
  // DMA out is estimated with the input size; the writeback event adjusts
  // nothing further (output DMA overlaps the tail of compute in streaming
  // cores, so a single post-compute estimate is adequate).
  const cycles_t dma_out =
      cfg_.dma_setup_cycles + cycles_t(p.src_len) / 8 * cfg_.dma_cycles_per_8_bytes;
  events_.schedule_at(clock_.now() + dma_in + compute + dma_out,
                      [this, idx] { complete_job(idx); });
}

void PrrController::complete_job(u32 idx) {
  PrrState& p = prrs_[idx];
  MINOVA_CHECK(p.busy);
  // Fetch input from the data section via the AXI_HP master path.
  std::vector<u8> in(p.src_len);
  mem::PhysMem* src_ram = bus_.ram_at(p.src_addr, p.src_len);
  if (src_ram == nullptr) {
    p.busy = false;
    p.error = true;
    p.done = true;
    return;
  }
  src_ram->read_block(p.src_addr, in);

  std::vector<u8> out = p.core->process(in);
  p.dst_len = u32(out.size());

  if (!hwmmu_check(p, p.dst_addr, u32(out.size()))) {
    p.busy = false;
    p.error = true;
    p.done = true;
    // The blocked write never reaches memory; still notify the client.
  } else {
    mem::PhysMem* dst_ram = bus_.ram_at(p.dst_addr, u32(out.size()));
    MINOVA_CHECK(dst_ram != nullptr);
    dst_ram->write_block(p.dst_addr, out);
    p.busy = false;
    p.done = true;
    ++p.jobs_completed;
  }
  if ((p.ctrl & kCtrlIrqEn) && p.irq_index != PrrState::kNoIrq)
    gic_.raise(gic_irq_for(p.irq_index));
}

void PrrController::begin_reconfigure(u32 prr_idx) {
  MINOVA_CHECK(prr_idx < prrs_.size());
  PrrState& p = prrs_[prr_idx];
  MINOVA_CHECK_MSG(!p.busy, "reconfiguring a busy PRR");
  p.reconfiguring = true;
  p.loaded_task = hwtask::kInvalidTask;
  p.core.reset();
}

void PrrController::abort_reconfigure(u32 prr_idx) {
  MINOVA_CHECK(prr_idx < prrs_.size());
  PrrState& p = prrs_[prr_idx];
  p.reconfiguring = false;
  p.loaded_task = hwtask::kInvalidTask;
  p.core.reset();
  p.error = true;
  log_.debug("PRR%u reconfiguration aborted; region dark", prr_idx);
}

bool PrrController::load_task(u32 prr_idx, hwtask::TaskId task) {
  MINOVA_CHECK(prr_idx < prrs_.size());
  PrrState& p = prrs_[prr_idx];
  const hwtask::TaskInfo* info = library_.find(task);
  MINOVA_CHECK_MSG(info != nullptr, "loading unknown task");
  const auto& compat = info->compatible_prrs;
  MINOVA_CHECK_MSG(
      std::find(compat.begin(), compat.end(), prr_idx) != compat.end(),
      "bitstream does not fit this PRR");
  if (fault_ != nullptr &&
      fault_->should_fail(sim::FaultSite::kPrrReconfigTimeout)) {
    // The region never signals reconfiguration-done within its deadline:
    // its contents are undefined, so it goes dark instead of half-loaded.
    ++reconfig_timeouts_;
    p.reconfiguring = false;
    p.loaded_task = hwtask::kInvalidTask;
    p.core.reset();
    p.error = true;
    log_.debug("PRR%u reconfiguration timeout loading %s", prr_idx,
               info->name.c_str());
    return false;
  }
  p.loaded_task = task;
  p.core = library_.instantiate(task);
  p.reconfiguring = false;
  p.done = p.error = false;
  log_.debug("PRR%u configured with %s", prr_idx, info->name.c_str());
  return true;
}

void PrrController::restore_registers(u32 idx, const std::array<u32, 8>& regs) {
  MINOVA_CHECK(idx < prrs_.size());
  PrrState& p = prrs_[idx];
  MINOVA_CHECK_MSG(!p.busy && !p.reconfiguring,
                   "restoring registers into an active PRR");
  p.ctrl = regs[kRegCtrl / 4] & kCtrlIrqEn;  // START was a pulse, not state
  p.src_addr = regs[kRegSrcAddr / 4];
  p.src_len = regs[kRegSrcLen / 4];
  p.dst_addr = regs[kRegDstAddr / 4];
  p.dst_len = regs[kRegDstLen / 4];
}

u64 PrrController::total_jobs() const {
  u64 n = 0;
  for (const auto& p : prrs_) n += p.jobs_completed;
  return n;
}

u64 PrrController::total_violations() const {
  u64 n = 0;
  for (const auto& p : prrs_) n += p.hwmmu_violations;
  return n;
}

}  // namespace minova::pl
