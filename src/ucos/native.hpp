// Native uC/OS-II system — the baseline execution mode of §V.B.
//
// The same uC/OS-II kernel and workloads run directly on the platform:
// privileged mode, flat addressing (MMU off), TTC-driven tick, interrupts
// dispatched straight to the OS, and the hardware-task service as a plain
// function call (hwmgr::NativeAllocator). Manager entry/exit and PL IRQ
// entry are zero by construction; only the allocator's execution time is
// measured — exactly how the paper's "Native" column is defined.
#pragma once

#include <memory>

#include "core/platform.hpp"
#include "hwmgr/native_allocator.hpp"
#include "nova/kmem.hpp"
#include "ucos/kernel.hpp"
#include "workloads/adpcm.hpp"
#include "workloads/gsm.hpp"
#include "workloads/thw.hpp"

namespace minova::ucos {

struct NativeConfig {
  u32 tick_us = 1000;
  u64 seed = 1;
  bool run_thw = true;
  u32 thw_period_ticks = 25;
  bool run_adpcm = true;
  bool run_gsm = true;
  std::vector<hwtask::TaskId> task_set;  // empty = full set
};

class NativeSystem {
 public:
  NativeSystem(Platform& platform, NativeConfig cfg = {});
  ~NativeSystem();

  void run_for_us(double us);

  Kernel& os() { return *os_; }
  hwmgr::NativeAllocator& allocator() { return *alloc_; }
  const workloads::ThwStats* thw_stats() const;
  u64 irqs_handled() const { return irqs_handled_; }

 private:
  class NativeSvc;

  void handle_irqs();

  Platform& platform_;
  NativeConfig cfg_;
  std::unique_ptr<cpu::CodeLayout> code_;
  std::unique_ptr<Kernel> os_;
  std::unique_ptr<hwmgr::NativeAllocator> alloc_;
  std::unique_ptr<workloads::AdpcmWorkload> adpcm_;
  std::unique_ptr<workloads::GsmWorkload> gsm_;
  std::unique_ptr<workloads::ThwWorkload> thw_;
  cpu::CodeRegion rg_irq_handler_;

  u32 granted_prr_ = 0;
  bool hw_completion_ = false;
  bool pcap_done_ = false;
  u64 irqs_handled_ = 0;
};

}  // namespace minova::ucos
