// uC/OS-II-style real-time kernel (the guest OS of the paper's evaluation,
// §V.A).
//
// Faithful to the uC/OS-II model: up to 64 tasks with unique fixed
// priorities (0 = highest), strictly preemptive highest-priority-ready
// scheduling driven by a periodic tick, counting semaphores, single-slot
// mailboxes and message queues, and time delays. Task bodies are run-once
// work units: a blocking call (pend/delay) marks the task not-ready and the
// unit returns — the scheduling decisions and their costs match the real
// kernel at unit granularity.
//
// The kernel is environment-agnostic: it runs identically inside a
// paravirtualized Mini-NOVA guest (port_paravirt -> hypercalls) and
// natively on the platform (port_native -> direct access). The environment
// drives it through `tick()` and `run_one_unit()`.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "cpu/code_region.hpp"
#include "util/types.hpp"
#include "workloads/services.hpp"

namespace minova::ucos {

class Kernel;

inline constexpr u8 kMaxTasks = 64;
inline constexpr u8 kIdlePrio = kMaxTasks - 1;  // OS idle task

/// Handle to kernel objects.
using SemId = u32;
using MboxId = u32;
using QueueId = u32;

/// Per-unit context handed to task bodies. Blocking calls take effect when
/// the unit returns (uC/OS-II would context-switch inside the call; at unit
/// granularity the next `run_one_unit` simply picks the new highest-ready).
class TaskCtx {
 public:
  TaskCtx(Kernel& os, workloads::Services& svc, u8 prio)
      : os_(os), svc_(svc), prio_(prio) {}

  workloads::Services& svc() { return svc_; }
  u8 priority() const { return prio_; }

  /// OSTimeDly: sleep for `ticks` timer ticks.
  void dly(u32 ticks);
  /// OSSemPend with zero timeout semantics: returns true when the count was
  /// available; otherwise blocks the task and returns false.
  bool sem_pend(SemId sem);
  void sem_post(SemId sem);
  /// OSMboxPend: receive into `out`; blocks (returns false) when empty.
  bool mbox_pend(MboxId mbox, u32& out);
  bool mbox_post(MboxId mbox, u32 msg);  // false when full (slot occupied)
  bool q_pend(QueueId q, u32& out);
  bool q_post(QueueId q, u32 msg);

  /// Voluntary yield hint: mark the task ready but end the unit.
  void yield() {}

 private:
  Kernel& os_;
  workloads::Services& svc_;
  u8 prio_;
};

using TaskFn = std::function<void(TaskCtx&)>;

struct KernelStats {
  u64 ticks = 0;
  u64 context_switches = 0;
  u64 units_run = 0;
  u64 sem_posts = 0;
  u64 sem_pends_blocked = 0;
};

class Kernel {
 public:
  /// `code` lays the OS's own text into the hosting image so scheduler and
  /// tick handler fetches hit the I-cache realistically.
  Kernel(std::string name, cpu::CodeLayout& code);

  /// OSTaskCreate. Priority must be unused and < kIdlePrio.
  void create_task(std::string name, u8 prio, TaskFn fn);

  SemId sem_create(u32 initial);
  MboxId mbox_create();
  QueueId q_create(u32 capacity);

  /// ISR-safe post operations (used by interrupt handlers).
  void sem_post(SemId sem);
  bool mbox_post(MboxId mbox, u32 msg);

  /// OSTimeTick: advance delays, wake expired tasks. Charges the tick
  /// handler's footprint.
  void tick(workloads::Services& svc);

  /// Run one unit of the highest-priority ready task. Returns false when
  /// only the idle task is ready (the environment may sleep).
  bool run_one_unit(workloads::Services& svc);

  const KernelStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  bool task_ready(u8 prio) const;
  u64 tick_count() const { return stats_.ticks; }

 private:
  friend class TaskCtx;

  enum class TaskState : u8 { kUnused, kReady, kDelayed, kPendSem, kPendMbox,
                              kPendQueue };

  struct Tcb {
    std::string name;
    TaskState state = TaskState::kUnused;
    u32 delay = 0;
    u32 wait_obj = 0;  // sem/mbox/queue id while pending
    TaskFn fn;
  };

  struct Sem {
    u32 count = 0;
  };
  struct Mbox {
    bool full = false;
    u32 msg = 0;
  };
  struct Queue {
    u32 capacity;
    std::deque<u32> msgs;
  };

  void make_ready(u8 prio);
  int highest_ready() const;
  void wake_pending_on(TaskState kind, u32 obj);

  std::string name_;
  std::array<Tcb, kMaxTasks> tcbs_;
  std::vector<Sem> sems_;
  std::vector<Mbox> mboxes_;
  std::vector<Queue> queues_;
  int last_ran_ = -1;
  KernelStats stats_;

  cpu::CodeRegion rg_sched_, rg_tick_, rg_switch_, rg_services_;
};

}  // namespace minova::ucos
