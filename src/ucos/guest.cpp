#include "ucos/guest.hpp"

#include "mem/address_map.hpp"
#include "nova/kernel.hpp"
#include "util/assert.hpp"

namespace minova::ucos {

using nova::GuestContext;
using nova::Hypercall;
using workloads::HwReqStatus;

// ---- the paravirt Services port ---------------------------------------------

class UcosGuest::GuestSvc final : public workloads::Services {
 public:
  GuestSvc(UcosGuest& owner, GuestContext& ctx) : owner_(owner), ctx_(ctx) {}

  void exec(const cpu::CodeRegion& region, double fraction) override {
    ctx_.exec(region, fraction);
  }
  void spend_insns(u64 n) override { ctx_.spend_insns(n); }
  bool read32(vaddr_t va, u32& out) override {
    const auto r = ctx_.read32(va);
    out = r.value;
    if (!r.ok) ctx_.take_fault(r.fault);  // SIV.C: page-fault acknowledgement
    return r.ok;
  }
  bool write32(vaddr_t va, u32 v) override {
    const auto r = ctx_.write32(va, v);
    if (!r.ok) ctx_.take_fault(r.fault);
    return r.ok;
  }
  bool read_block(vaddr_t va, std::span<u8> out) override {
    return ctx_.read_block(va, out).ok;
  }
  bool write_block(vaddr_t va, std::span<const u8> in) override {
    return ctx_.write_block(va, in).ok;
  }
  void use_vfp() override { ctx_.use_vfp(); }
  double now_us() override { return ctx_.now_us(); }

  HwReqStatus hw_request(u32 task, vaddr_t iface_va,
                         vaddr_t data_va) override {
    owner_.pcap_done_seen_ = false;
    const auto res =
        ctx_.hypercall(Hypercall::kHwTaskRequest, task, iface_va, data_va);
    if (!res.ok()) return HwReqStatus::kError;
    if (res.status == nova::HcStatus::kBusy) return HwReqStatus::kBusy;
    // Transient kernel-path failure: nothing was dispatched; retrying next
    // tick is exactly the Busy protocol.
    if (res.status == nova::HcStatus::kAgain) return HwReqStatus::kBusy;
    if (res.r1 == nova::kHwGrantSoftware) return HwReqStatus::kSoftwareFallback;
    return res.r1 != 0 ? HwReqStatus::kGrantedReconfig : HwReqStatus::kGranted;
  }
  bool hw_release(u32 task) override {
    // kAgain/kBusy are positive statuses; only kSuccess means released.
    return ctx_.hypercall(Hypercall::kHwTaskRelease, task).status ==
           nova::HcStatus::kSuccess;
  }
  bool hw_reconfig_done() override {
    return hw_reconfig_status() == workloads::ReconfigStatus::kReady;
  }
  workloads::ReconfigStatus hw_reconfig_status() override {
    // Two acknowledgement methods (§IV.E stage 6): the PCAP completion IRQ
    // latched by the handler, or explicit polling via hypercall. Only the
    // poll can observe a manager-declared fallback.
    if (owner_.pcap_done_seen_) return workloads::ReconfigStatus::kReady;
    const auto res = ctx_.hypercall(Hypercall::kHwTaskQuery, 0);
    if (!res.ok()) return workloads::ReconfigStatus::kInFlight;
    if (res.r1 == nova::kReconfigFallback)
      return workloads::ReconfigStatus::kFailed;
    return res.r1 == nova::kReconfigReady
               ? workloads::ReconfigStatus::kReady
               : workloads::ReconfigStatus::kInFlight;
  }
  bool hw_take_completion() override {
    if (!owner_.hw_completion_) return false;
    owner_.hw_completion_ = false;
    return true;
  }

  vaddr_t hw_iface_va() const override { return nova::kGuestHwIfaceVa; }
  vaddr_t hw_data_va() const override { return nova::kGuestHwDataVa; }
  paddr_t hw_data_pa() const override {
    return nova::vm_phys_base(owner_.cfg_.vm_index) + nova::kGuestHwDataVa;
  }
  u32 hw_data_size() const override { return nova::kGuestHwDataSize; }

 private:
  UcosGuest& owner_;
  GuestContext& ctx_;
};

// ---- UcosGuest ---------------------------------------------------------------

UcosGuest::UcosGuest(const hwtask::TaskLibrary& library, GuestConfig cfg)
    : library_(library), cfg_(std::move(cfg)) {
  name_ = "ucos-vm" + std::to_string(cfg_.vm_index);
  if (cfg_.task_set.empty()) cfg_.task_set = library_.ids();
}

UcosGuest::~UcosGuest() = default;

void UcosGuest::boot(GuestContext& ctx) {
  // Guest image text lives in the VM's own physical slab. Per-VM stagger
  // keeps images from aliasing onto identical L2 sets (real load addresses
  // differ between builds; a 64 KB-aligned layout for every VM would be an
  // artificial worst case for the set-associative caches).
  const paddr_t text_base =
      nova::vm_phys_base(cfg_.vm_index) + 0x10000 + cfg_.vm_index * 0x6440;
  code_ = std::make_unique<cpu::CodeLayout>(text_base, 256 * kKiB);
  os_ = std::make_unique<Kernel>(name_, *code_);
  rg_irq_handler_ = code_->place(256);

  // The porting patch (§V.A): the de-privileged boot sequence performs its
  // sensitive setup through hypercalls — privileged system registers,
  // cache/TLB initialization, guest privilege level, IRQ entry, the virtual
  // timer registration, and a boot banner on the supervised UART.
  MINOVA_CHECK(ctx.hypercall(Hypercall::kRegWrite, 0, 0, 0xC5A9'0001u).ok());
  MINOVA_CHECK(ctx.hypercall(Hypercall::kRegWrite, 0, 1, cfg_.vm_index).ok());
  MINOVA_CHECK(ctx.hypercall(Hypercall::kCacheFlushAll).ok());
  MINOVA_CHECK(ctx.hypercall(Hypercall::kTlbFlushAll).ok());
  MINOVA_CHECK(ctx.hypercall(Hypercall::kSetGuestMode, 1).ok());
  MINOVA_CHECK(ctx.hypercall(Hypercall::kIrqSetEntry, 0, 0x8000).ok());
  MINOVA_CHECK(ctx.hypercall(Hypercall::kVtimerConfig, 0, cfg_.tick_us).ok());
  MINOVA_CHECK(ctx.hypercall(Hypercall::kIrqEnable, nova::kVtimerVirq).ok());
  for (char c : std::string(name_ + " up\n"))
    (void)ctx.hypercall(Hypercall::kUartWrite, 0, u32(c));

  // Workload tasks. Buffers sit in the guest-user region; code in the
  // guest-kernel image.
  if (cfg_.run_thw) {
    thw_ = std::make_unique<workloads::ThwWorkload>(
        code_->place(768), library_, cfg_.task_set, cfg_.seed * 977 + 13);
    os_->create_task("T_hw", 4, [this](TaskCtx& t) {
      const auto r = thw_->run_unit(t.svc());
      if (thw_->at_cycle_boundary())
        t.dly(cfg_.thw_period_ticks);  // paced request cadence (§V.B)
      else if (r == workloads::ThwWorkload::UnitResult::kWaiting)
        t.dly(1);
    });
  }
  if (cfg_.run_gsm) {
    gsm_ = std::make_unique<workloads::GsmWorkload>(
        code_->place(1024),
        nova::kGuestUserVa + 0x20000 + cfg_.vm_index * 0x4c40,
        cfg_.seed * 31 + 7);
    os_->create_task("gsm", 8, [this](TaskCtx& t) {
      gsm_->run_unit(t.svc());
      t.dly(1);  // frame cadence
    });
  }
  if (cfg_.run_adpcm) {
    adpcm_ = std::make_unique<workloads::AdpcmWorkload>(
        code_->place(640),
        nova::kGuestUserVa + 0x40000 + cfg_.vm_index * 0x3c40, 1024,
        cfg_.seed * 131 + 5);
    os_->create_task("adpcm", 9, [this](TaskCtx& t) {
      adpcm_->run_unit(t.svc());
      // Heavy compression load: run several blocks per tick.
      if (adpcm_->blocks_done() % 4 == 3) t.dly(1);
    });
  }
}

nova::StepExit UcosGuest::step(GuestContext& ctx, cycles_t budget) {
  GuestSvc svc(*this, ctx);
  const cycles_t start = ctx.now_cycles();
  while (ctx.now_cycles() - start < budget) {
    if (!os_->run_one_unit(svc)) return nova::StepExit::kYield;
  }
  return nova::StepExit::kBudget;
}

void UcosGuest::on_virq(GuestContext& ctx, u32 irq) {
  GuestSvc svc(*this, ctx);
  ctx.exec(rg_irq_handler_);
  ++virqs_handled_;
  if (irq == nova::kVtimerVirq) {
    os_->tick(svc);
  } else if (irq == mem::kIrqDevcfg) {
    pcap_done_seen_ = true;
  } else {
    // PL interrupt: hardware-task completion.
    hw_completion_ = true;
  }
  (void)ctx.hypercall(Hypercall::kIrqComplete, irq);
}

const workloads::ThwStats* UcosGuest::thw_stats() const {
  return thw_ ? &thw_->stats() : nullptr;
}

}  // namespace minova::ucos
