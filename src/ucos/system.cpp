#include "ucos/system.hpp"

namespace minova::ucos {

VirtualizedSystem::VirtualizedSystem(const SystemConfig& cfg)
    : platform_(cfg.platform), kernel_(platform_, cfg.kernel),
      manager_(kernel_) {
  manager_.install(cfg.manager_priority);
  for (u32 i = 0; i < cfg.num_guests; ++i) {
    GuestConfig gc = cfg.guest_template;
    gc.vm_index = i;
    gc.seed = cfg.seed * 1000 + i;
    auto guest =
        std::make_unique<UcosGuest>(platform_.task_library(), gc);
    UcosGuest* raw = guest.get();
    kernel_.create_vm("vm" + std::to_string(i), cfg.guest_priority,
                      std::move(guest));
    guests_.push_back(raw);
  }
}

workloads::ThwStats VirtualizedSystem::total_thw_stats() const {
  workloads::ThwStats total;
  for (const UcosGuest* g : guests_) {
    if (const workloads::ThwStats* s = g->thw_stats()) {
      total.requests += s->requests;
      total.grants += s->grants;
      total.reconfigs += s->reconfigs;
      total.busy_retries += s->busy_retries;
      total.jobs_completed += s->jobs_completed;
      total.validation_failures += s->validation_failures;
      total.inconsistencies_detected += s->inconsistencies_detected;
      total.fail_status += s->fail_status;
      total.fail_length += s->fail_length;
      total.fail_content += s->fail_content;
    }
  }
  return total;
}

}  // namespace minova::ucos
