#include "ucos/kernel.hpp"

#include "util/assert.hpp"

namespace minova::ucos {

// ---- TaskCtx ----------------------------------------------------------------

void TaskCtx::dly(u32 ticks) {
  auto& tcb = os_.tcbs_[prio_];
  tcb.state = Kernel::TaskState::kDelayed;
  tcb.delay = ticks == 0 ? 1 : ticks;
  svc_.spend_insns(30);
}

bool TaskCtx::sem_pend(SemId sem) {
  MINOVA_CHECK(sem < os_.sems_.size());
  svc_.exec(os_.rg_services_, 0.5);
  if (os_.sems_[sem].count > 0) {
    --os_.sems_[sem].count;
    return true;
  }
  auto& tcb = os_.tcbs_[prio_];
  tcb.state = Kernel::TaskState::kPendSem;
  tcb.wait_obj = sem;
  ++os_.stats_.sem_pends_blocked;
  return false;
}

void TaskCtx::sem_post(SemId sem) { os_.sem_post(sem); }

bool TaskCtx::mbox_pend(MboxId mbox, u32& out) {
  MINOVA_CHECK(mbox < os_.mboxes_.size());
  svc_.exec(os_.rg_services_, 0.5);
  auto& mb = os_.mboxes_[mbox];
  if (mb.full) {
    out = mb.msg;
    mb.full = false;
    return true;
  }
  auto& tcb = os_.tcbs_[prio_];
  tcb.state = Kernel::TaskState::kPendMbox;
  tcb.wait_obj = mbox;
  return false;
}

bool TaskCtx::mbox_post(MboxId mbox, u32 msg) { return os_.mbox_post(mbox, msg); }

bool TaskCtx::q_pend(QueueId q, u32& out) {
  MINOVA_CHECK(q < os_.queues_.size());
  svc_.exec(os_.rg_services_, 0.5);
  auto& qq = os_.queues_[q];
  if (!qq.msgs.empty()) {
    out = qq.msgs.front();
    qq.msgs.pop_front();
    return true;
  }
  auto& tcb = os_.tcbs_[prio_];
  tcb.state = Kernel::TaskState::kPendQueue;
  tcb.wait_obj = q;
  return false;
}

bool TaskCtx::q_post(QueueId q, u32 msg) {
  MINOVA_CHECK(q < os_.queues_.size());
  auto& qq = os_.queues_[q];
  if (qq.msgs.size() >= qq.capacity) return false;
  qq.msgs.push_back(msg);
  os_.wake_pending_on(Kernel::TaskState::kPendQueue, q);
  return true;
}

// ---- Kernel -----------------------------------------------------------------

Kernel::Kernel(std::string name, cpu::CodeLayout& code)
    : name_(std::move(name)) {
  rg_sched_ = code.place(256);
  rg_tick_ = code.place(192);
  rg_switch_ = code.place(224);
  rg_services_ = code.place(288);
  // The OS idle task exists implicitly: run_one_unit returns false when it
  // would be the only runnable task.
}

void Kernel::create_task(std::string name, u8 prio, TaskFn fn) {
  MINOVA_CHECK(prio < kIdlePrio);
  MINOVA_CHECK_MSG(tcbs_[prio].state == TaskState::kUnused,
                   "priority already in use (uC/OS-II: unique per task)");
  tcbs_[prio] =
      Tcb{std::move(name), TaskState::kReady, 0, 0, std::move(fn)};
}

SemId Kernel::sem_create(u32 initial) {
  sems_.push_back(Sem{initial});
  return SemId(sems_.size() - 1);
}

MboxId Kernel::mbox_create() {
  mboxes_.push_back(Mbox{});
  return MboxId(mboxes_.size() - 1);
}

QueueId Kernel::q_create(u32 capacity) {
  queues_.push_back(Queue{capacity, {}});
  return QueueId(queues_.size() - 1);
}

void Kernel::make_ready(u8 prio) {
  tcbs_[prio].state = TaskState::kReady;
  tcbs_[prio].delay = 0;
}

void Kernel::wake_pending_on(TaskState kind, u32 obj) {
  // Highest-priority pender wins (uC/OS-II wakes one task per post).
  for (u8 p = 0; p < kIdlePrio; ++p) {
    if (tcbs_[p].state == kind && tcbs_[p].wait_obj == obj) {
      make_ready(p);
      return;
    }
  }
}

void Kernel::sem_post(SemId sem) {
  MINOVA_CHECK(sem < sems_.size());
  ++stats_.sem_posts;
  // Accumulate the count, then wake the highest-priority pender (its re-run
  // of OSSemPend consumes the count — the handoff of the real kernel at
  // unit granularity).
  ++sems_[sem].count;
  for (u8 p = 0; p < kIdlePrio; ++p) {
    if (tcbs_[p].state == TaskState::kPendSem && tcbs_[p].wait_obj == sem) {
      make_ready(p);
      return;
    }
  }
}

bool Kernel::mbox_post(MboxId mbox, u32 msg) {
  MINOVA_CHECK(mbox < mboxes_.size());
  auto& mb = mboxes_[mbox];
  for (u8 p = 0; p < kIdlePrio; ++p) {
    if (tcbs_[p].state == TaskState::kPendMbox && tcbs_[p].wait_obj == mbox) {
      mb.msg = msg;  // delivered through the slot
      mb.full = true;
      make_ready(p);
      return true;
    }
  }
  if (mb.full) return false;
  mb.full = true;
  mb.msg = msg;
  return true;
}

void Kernel::tick(workloads::Services& svc) {
  svc.exec(rg_tick_);
  ++stats_.ticks;
  for (u8 p = 0; p < kIdlePrio; ++p) {
    if (tcbs_[p].state == TaskState::kDelayed && --tcbs_[p].delay == 0)
      make_ready(p);
  }
}

int Kernel::highest_ready() const {
  for (u8 p = 0; p < kIdlePrio; ++p)
    if (tcbs_[p].state == TaskState::kReady) return p;
  return -1;
}

bool Kernel::task_ready(u8 prio) const {
  return tcbs_[prio].state == TaskState::kReady;
}

bool Kernel::run_one_unit(workloads::Services& svc) {
  svc.exec(rg_sched_, 0.5);
  const int p = highest_ready();
  if (p < 0) return false;  // only the idle task: environment may sleep
  if (p != last_ran_) {
    svc.exec(rg_switch_);
    svc.spend_insns(90);  // register save/restore of the outgoing task
    ++stats_.context_switches;
    last_ran_ = p;
  }
  TaskCtx ctx(*this, svc, u8(p));
  tcbs_[p].fn(ctx);
  ++stats_.units_run;
  return true;
}

}  // namespace minova::ucos
