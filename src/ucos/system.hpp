// Whole-system assembly: the paper's evaluation setup in one object
// (Fig. 8) — Mini-NOVA on the platform, the Hardware Task Manager service
// at elevated priority, and N paravirtualized uC/OS-II guests at equal
// priority sharing the CPU round-robin, each running GSM/ADPCM load plus
// the T_hw hardware-task requester.
#pragma once

#include <memory>
#include <vector>

#include "core/platform.hpp"
#include "hwmgr/manager.hpp"
#include "nova/kernel.hpp"
#include "ucos/guest.hpp"

namespace minova::ucos {

struct SystemConfig {
  u32 num_guests = 2;
  u32 guest_priority = 1;
  u32 manager_priority = 2;
  u64 seed = 42;
  PlatformConfig platform{};
  nova::KernelConfig kernel{};
  GuestConfig guest_template{};  // vm_index/seed are overridden per guest
};

class VirtualizedSystem {
 public:
  explicit VirtualizedSystem(const SystemConfig& cfg = {});

  void run_for_us(double us) { kernel_.run_for_us(us); }

  Platform& platform() { return platform_; }
  nova::Kernel& kernel() { return kernel_; }
  hwmgr::ManagerService& manager() { return manager_; }
  UcosGuest& guest(u32 i) { return *guests_.at(i); }
  u32 num_guests() const { return u32(guests_.size()); }

  /// Aggregated T_hw statistics across guests.
  workloads::ThwStats total_thw_stats() const;

 private:
  Platform platform_;
  nova::Kernel kernel_;
  hwmgr::ManagerService manager_;
  std::vector<UcosGuest*> guests_;  // owned by their protection domains
};

}  // namespace minova::ucos
