#include "ucos/native.hpp"

#include "mem/address_map.hpp"
#include "pl/prr_controller.hpp"
#include "util/assert.hpp"

namespace minova::ucos {

using workloads::HwReqStatus;

// ---- native Services port ----------------------------------------------------

class NativeSystem::NativeSvc final : public workloads::Services {
 public:
  explicit NativeSvc(NativeSystem& owner) : owner_(owner) {}

  void exec(const cpu::CodeRegion& region, double fraction) override {
    owner_.platform_.cpu().exec_code(region, fraction);
  }
  void spend_insns(u64 n) override { owner_.platform_.cpu().spend_insns(n); }
  bool read32(vaddr_t va, u32& out) override {
    const auto r = owner_.platform_.cpu().vread32(va);
    out = r.value;
    return r.ok;
  }
  bool write32(vaddr_t va, u32 v) override {
    return owner_.platform_.cpu().vwrite32(va, v).ok;
  }
  bool read_block(vaddr_t va, std::span<u8> out) override {
    return owner_.platform_.cpu().vread_block(va, out).ok;
  }
  bool write_block(vaddr_t va, std::span<const u8> in) override {
    return owner_.platform_.cpu().vwrite_block(va, in).ok;
  }
  double now_us() override { return owner_.platform_.clock().now_us(); }

  HwReqStatus hw_request(u32 task, vaddr_t, vaddr_t) override {
    owner_.pcap_done_ = false;
    const auto grant =
        owner_.alloc_->request(task, hw_data_pa(), hw_data_size());
    if (grant.status == HwReqStatus::kGranted ||
        grant.status == HwReqStatus::kGrantedReconfig)
      owner_.granted_prr_ = grant.prr;
    return grant.status;
  }
  bool hw_release(u32 task) override { return owner_.alloc_->release(task); }
  bool hw_reconfig_done() override {
    if (owner_.pcap_done_) return true;
    const auto r = owner_.platform_.cpu().vread32(mem::kDevcfgBase + 0x04);
    return r.ok && (r.value & 0b10u) != 0;  // DONE bit
  }
  bool hw_take_completion() override {
    if (!owner_.hw_completion_) return false;
    owner_.hw_completion_ = false;
    return true;
  }

  // Flat addressing: VA == PA; the interface is the granted PRR's register
  // page, directly addressed.
  vaddr_t hw_iface_va() const override {
    return owner_.platform_.prr_controller().reg_group_pa(owner_.granted_prr_);
  }
  vaddr_t hw_data_va() const override { return hw_data_pa(); }
  paddr_t hw_data_pa() const override {
    return nova::vm_phys_base(0) + nova::kGuestHwDataVa;
  }
  u32 hw_data_size() const override { return nova::kGuestHwDataSize; }

 private:
  NativeSystem& owner_;
};

// ---- NativeSystem --------------------------------------------------------------

NativeSystem::NativeSystem(Platform& platform, NativeConfig cfg)
    : platform_(platform), cfg_(std::move(cfg)) {
  if (cfg_.task_set.empty()) cfg_.task_set = platform.task_library().ids();
  const paddr_t image = nova::vm_phys_base(0) + 0x10000;
  code_ = std::make_unique<cpu::CodeLayout>(image, 256 * kKiB);
  os_ = std::make_unique<Kernel>("ucos-native", *code_);
  alloc_ = std::make_unique<hwmgr::NativeAllocator>(platform_, *code_);
  rg_irq_handler_ = code_->place(256);

  if (cfg_.run_thw) {
    thw_ = std::make_unique<workloads::ThwWorkload>(
        code_->place(768), platform.task_library(), cfg_.task_set,
        cfg_.seed * 977 + 13);
    os_->create_task("T_hw", 4, [this](TaskCtx& t) {
      const auto r = thw_->run_unit(t.svc());
      if (thw_->at_cycle_boundary())
        t.dly(cfg_.thw_period_ticks);
      else if (r == workloads::ThwWorkload::UnitResult::kWaiting)
        t.dly(1);
    });
  }
  const paddr_t user = nova::vm_phys_base(0) + nova::kGuestUserVa;
  if (cfg_.run_gsm) {
    gsm_ = std::make_unique<workloads::GsmWorkload>(
        code_->place(1024), user + 0x20000, cfg_.seed * 31 + 7);
    os_->create_task("gsm", 8, [this](TaskCtx& t) {
      gsm_->run_unit(t.svc());
      t.dly(1);
    });
  }
  if (cfg_.run_adpcm) {
    adpcm_ = std::make_unique<workloads::AdpcmWorkload>(
        code_->place(640), user + 0x40000, 1024, cfg_.seed * 131 + 5);
    os_->create_task("adpcm", 9, [this](TaskCtx& t) {
      adpcm_->run_unit(t.svc());
      if (adpcm_->blocks_done() % 4 == 3) t.dly(1);
    });
  }

  // Native tick straight from the TTC; IRQs handled by the OS directly.
  const u32 interval =
      u32(platform_.clock().us_to_cycles(cfg_.tick_us) >> 1);
  platform_.ttc().start_interval(0, interval, /*prescale=*/0);
  platform_.gic().enable_irq(mem::kIrqTtc0_0);
  platform_.gic().enable_irq(mem::kIrqDevcfg);
}

NativeSystem::~NativeSystem() { platform_.ttc().stop(0); }

void NativeSystem::handle_irqs() {
  auto& core = platform_.cpu();
  auto& gic = platform_.gic();
  NativeSvc svc(*this);
  int guard = 0;
  while (gic.irq_asserted() && guard++ < 64) {
    core.exception_enter(cpu::Exception::kIrq);
    core.exec_code(rg_irq_handler_);
    const u32 irq = gic.acknowledge();
    core.spend(core.caches().access_device());
    if (irq == irq::kSpuriousIrq) {
      core.exception_return(cpu::Mode::kSvc);
      break;
    }
    ++irqs_handled_;
    if (irq == mem::kIrqTtc0_0) {
      os_->tick(svc);
    } else if (irq == mem::kIrqDevcfg) {
      pcap_done_ = true;
    } else {
      hw_completion_ = true;  // PL completion straight into the OS
    }
    gic.eoi(irq);
    core.spend(core.caches().access_device());
    core.exception_return(cpu::Mode::kSvc);
    platform_.pump();
  }
}

void NativeSystem::run_for_us(double us) {
  const cycles_t end =
      platform_.clock().now() + platform_.clock().us_to_cycles(us);
  NativeSvc svc(*this);
  while (platform_.clock().now() < end) {
    platform_.pump();
    handle_irqs();
    if (!os_->run_one_unit(svc)) platform_.idle_until_next_event(end);
  }
}

const workloads::ThwStats* NativeSystem::thw_stats() const {
  return thw_ ? &thw_->stats() : nullptr;
}

}  // namespace minova::ucos
