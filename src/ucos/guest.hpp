// Paravirtualized uC/OS-II guest for Mini-NOVA (paper §V.A).
//
// This is the "porting patch" layer: the uC/OS-II kernel itself is
// unmodified; this adapter replaces its sensitive operations with
// hypercalls — virtual timer registration, interrupt entry registration,
// the local vIRQ table, hardware-task client APIs, and UART output — which
// is exactly the patch set the paper describes (~200 LoC, 17 of the 25
// hypercalls used).
#pragma once

#include <memory>
#include <optional>

#include "nova/guest_iface.hpp"
#include "nova/kmem.hpp"
#include "ucos/kernel.hpp"
#include "workloads/adpcm.hpp"
#include "workloads/gsm.hpp"
#include "workloads/thw.hpp"

namespace minova::ucos {

struct GuestConfig {
  u32 vm_index = 0;       // which physical slab this VM boots from
  u32 tick_us = 1000;     // guest timer tick period
  u64 seed = 1;
  bool run_thw = true;    // the hardware-task requester task
  u32 thw_period_ticks = 25;  // pause between T_hw request cycles
  bool run_adpcm = true;
  bool run_gsm = true;
  std::vector<hwtask::TaskId> task_set;  // empty = full FFT+QAM set
};

class UcosGuest final : public nova::GuestOs {
 public:
  UcosGuest(const hwtask::TaskLibrary& library, GuestConfig cfg);
  ~UcosGuest() override;

  // nova::GuestOs
  const char* guest_name() const override { return name_.c_str(); }
  void boot(nova::GuestContext& ctx) override;
  nova::StepExit step(nova::GuestContext& ctx, cycles_t budget) override;
  void on_virq(nova::GuestContext& ctx, u32 irq) override;

  Kernel& os() { return *os_; }
  const workloads::ThwStats* thw_stats() const;
  u64 virqs_handled() const { return virqs_handled_; }

 private:
  class GuestSvc;  // workloads::Services over the paravirt port

  const hwtask::TaskLibrary& library_;
  GuestConfig cfg_;
  std::string name_;

  std::unique_ptr<cpu::CodeLayout> code_;
  std::unique_ptr<Kernel> os_;
  std::unique_ptr<workloads::AdpcmWorkload> adpcm_;
  std::unique_ptr<workloads::GsmWorkload> gsm_;
  std::unique_ptr<workloads::ThwWorkload> thw_;
  cpu::CodeRegion rg_irq_handler_;

  // Local vIRQ state table (the guest-side record of §V.A): completion and
  // reconfiguration events latched by the IRQ handler.
  bool hw_completion_ = false;
  bool pcap_done_seen_ = false;
  u64 virqs_handled_ = 0;
};

}  // namespace minova::ucos
