#include "sim/fault.hpp"

#include <algorithm>
#include <string>

namespace minova::sim {

FaultInjector::FaultInjector(Clock& clock, StatsRegistry& stats,
                             const FaultConfig& cfg)
    : clock_(clock), stats_(stats), cfg_(cfg) {
  for (u32 i = 0; i < kNumFaultSites; ++i) {
    const std::string base =
        std::string("fault.") + fault_site_name(FaultSite(i));
    sites_[i].c_attempts = stats_.handle(base + ".attempts");
    sites_[i].c_injected = stats_.handle(base + ".injected");
  }
  seed_streams();
}

void FaultInjector::seed_streams() {
  // Derive one independent stream per site from the experiment seed via the
  // splitmix64 expansion (the same scheme Xoshiro256 uses internally).
  u64 sm = cfg_.seed;
  for (auto& site : sites_) site.rng = util::Xoshiro256(util::splitmix64(sm));
}

void FaultInjector::reset() {
  for (auto& site : sites_) {
    site.attempts = 0;
    site.injected = 0;
  }
  records_.clear();
  seed_streams();
}

bool FaultInjector::should_fail(FaultSite site) {
  if (!cfg_.enabled) return false;
  SiteState& st = sites_[u32(site)];
  const FaultSiteConfig& sc = cfg_.sites[u32(site)];
  const u64 attempt = st.attempts++;
  st.c_attempts.inc();

  // Draw unconditionally so the stream position is a pure function of the
  // attempt index (a schedule hit must not shift later random decisions).
  const double draw = st.rng.next_double();
  bool fail = sc.probability > 0.0 && draw < sc.probability;
  if (!fail && !sc.schedule.empty())
    fail = std::find(sc.schedule.begin(), sc.schedule.end(), attempt) !=
           sc.schedule.end();

  if (fail) {
    ++st.injected;
    st.c_injected.inc();
    records_.push_back({site, attempt, clock_.now()});
  }
  return fail;
}

}  // namespace minova::sim
