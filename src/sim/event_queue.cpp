#include "sim/event_queue.hpp"

#include <utility>

#include "util/assert.hpp"

namespace minova::sim {

EventQueue::EventId EventQueue::schedule_at(cycles_t when, Callback cb) {
  MINOVA_CHECK(cb != nullptr);
  const EventId id = callbacks_.size();
  callbacks_.push_back(std::move(cb));
  heap_.push(Event{when, next_seq_++, id});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= callbacks_.size() || !callbacks_[id]) return false;
  callbacks_[id] = nullptr;  // lazily dropped when popped
  --live_count_;
  return true;
}

std::size_t EventQueue::run_due(cycles_t now) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().when <= now) {
    const Event ev = heap_.top();
    heap_.pop();
    Callback cb = std::move(callbacks_[ev.id]);
    callbacks_[ev.id] = nullptr;
    if (!cb) continue;  // was cancelled
    --live_count_;
    cb();
    ++fired;
  }
  return fired;
}

bool EventQueue::next_deadline(cycles_t& out) const {
  // The heap may contain cancelled entries; peek past them without mutating
  // state by copying (heap is small: device events only).
  auto copy = heap_;
  while (!copy.empty()) {
    const Event& ev = copy.top();
    if (callbacks_[ev.id]) {
      out = ev.when;
      return true;
    }
    copy.pop();
  }
  return false;
}

}  // namespace minova::sim
