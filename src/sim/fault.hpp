// Deterministic fault-injection subsystem (DESIGN.md §8).
//
// Real DPR deployments are not happy-path machines: PCAP transfers hit CRC
// errors and DMA aborts, reconfigurable regions wedge and miss their
// reconfiguration deadline, and kernel entry paths see transient failures.
// This module injects those faults *deterministically* so every failure
// scenario is replayable bit-for-bit:
//
//   * each injection site draws from its own RNG stream derived from the
//     experiment seed, so a decision at one site never perturbs another
//     site's sequence regardless of interleaving;
//   * a decision depends only on (seed, site, per-site attempt index) —
//     never on wall-clock, global call order, or other sites;
//   * on top of the probabilistic model, an explicit per-site schedule of
//     failing attempt indices supports exact fault-schedule replay in
//     tests ("fail the 1st and 3rd transfer");
//   * every probe and injection is counted in the stats registry
//     (`fault.<site>.attempts` / `fault.<site>.injected`) and appended to
//     an in-memory record list for post-run inspection.
//
// Disabled (the default), `should_fail` returns false without touching the
// RNG, the counters, or the record list — the simulation is bit-identical
// to a build without the subsystem.
#pragma once

#include <array>
#include <vector>

#include "sim/clock.hpp"
#include "sim/stats.hpp"
#include "util/rng.hpp"

namespace minova::sim {

/// Injection points wired into the platform. Keep `fault_site_name` and the
/// stats counter names in sync when extending.
enum class FaultSite : u8 {
  kPcapCrc = 0,         // bitstream CRC check fails at transfer end
  kPcapTransfer,        // DevC DMA aborts mid-stream
  kPcapStall,           // transfer stalls: extra latency, still succeeds
  kPrrReconfigTimeout,  // region misses its reconfiguration deadline
  kPrrRegionBusy,       // static logic spuriously NAKs the reconfig handshake
  kHypercallTransient,  // EAGAIN-style transient kernel-path failure
  kCount,
};

inline constexpr u32 kNumFaultSites = u32(FaultSite::kCount);

constexpr const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kPcapCrc: return "pcap_crc";
    case FaultSite::kPcapTransfer: return "pcap_transfer";
    case FaultSite::kPcapStall: return "pcap_stall";
    case FaultSite::kPrrReconfigTimeout: return "prr_reconfig_timeout";
    case FaultSite::kPrrRegionBusy: return "prr_region_busy";
    case FaultSite::kHypercallTransient: return "hypercall_transient";
    case FaultSite::kCount: break;
  }
  return "?";
}

struct FaultSiteConfig {
  /// Per-probe injection probability in [0, 1].
  double probability = 0.0;
  /// Explicit failing attempt indices (0-based, per site), evaluated in
  /// addition to the probabilistic draw. The RNG stream advances on every
  /// probe either way, so adding a schedule never shifts the random
  /// decisions of later attempts.
  std::vector<u64> schedule;
};

struct FaultConfig {
  bool enabled = false;
  u64 seed = 0xFA17'DEEDull;
  /// Extra latency of a stalled PCAP transfer (kPcapStall).
  cycles_t stall_cycles = 250'000;
  std::array<FaultSiteConfig, kNumFaultSites> sites{};
};

/// One injected fault, for replay verification and debugging.
struct FaultRecord {
  FaultSite site = FaultSite::kCount;
  u64 attempt = 0;   // per-site attempt index the fault hit
  cycles_t at = 0;   // sim time of the decision
};

class FaultInjector {
 public:
  FaultInjector(Clock& clock, StatsRegistry& stats,
                const FaultConfig& cfg = {});

  bool enabled() const { return cfg_.enabled; }
  void set_enabled(bool on) { cfg_.enabled = on; }

  /// Probe the site: true when the fault fires for this attempt. Advances
  /// the site's attempt counter and RNG stream (only while enabled).
  bool should_fail(FaultSite site);

  cycles_t stall_cycles() const { return cfg_.stall_cycles; }

  void set_probability(FaultSite site, double p) {
    cfg_.sites[u32(site)].probability = p;
  }
  void set_schedule(FaultSite site, std::vector<u64> attempts) {
    cfg_.sites[u32(site)].schedule = std::move(attempts);
  }

  u64 attempts(FaultSite site) const { return sites_[u32(site)].attempts; }
  u64 injected(FaultSite site) const { return sites_[u32(site)].injected; }
  /// Totals across all sites.
  u64 attempts() const {
    u64 n = 0;
    for (const auto& s : sites_) n += s.attempts;
    return n;
  }
  u64 injected() const {
    u64 n = 0;
    for (const auto& s : sites_) n += s.injected;
    return n;
  }
  const std::vector<FaultRecord>& records() const { return records_; }
  const FaultConfig& config() const { return cfg_; }

  /// Rewind every site to attempt 0 and re-derive the per-site streams from
  /// the configured seed: the next run replays identical decisions.
  void reset();

 private:
  struct SiteState {
    util::Xoshiro256 rng{0};
    u64 attempts = 0;
    u64 injected = 0;
    // `fault.<site>.attempts` / `.injected`, interned at construction so
    // the per-probe path never builds a string or hashes a name.
    CounterHandle c_attempts;
    CounterHandle c_injected;
  };

  void seed_streams();

  Clock& clock_;
  StatsRegistry& stats_;
  FaultConfig cfg_;
  std::array<SiteState, kNumFaultSites> sites_{};
  std::vector<FaultRecord> records_;
};

}  // namespace minova::sim
