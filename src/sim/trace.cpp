#include "sim/trace.hpp"

#include <cstdio>
#include <sstream>

namespace minova::sim {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kVmSwitch: return "vm-switch";
    case TraceKind::kHypercall: return "hypercall";
    case TraceKind::kIrq: return "irq";
    case TraceKind::kVirqInject: return "virq-inject";
    case TraceKind::kHwGrant: return "hw-grant";
    case TraceKind::kHwReclaim: return "hw-reclaim";
    case TraceKind::kPcapStart: return "pcap-start";
    case TraceKind::kPcapDone: return "pcap-done";
    case TraceKind::kGuestFault: return "guest-fault";
  }
  return "?";
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i)
    out.push_back(events_[(head_ + i) % events_.size()]);
  return out;
}

std::size_t TraceBuffer::count(TraceKind kind) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

std::string TraceBuffer::to_string(u64 freq_hz) const {
  std::ostringstream os;
  char line[128];
  for (const TraceEvent& e : snapshot()) {
    std::snprintf(line, sizeof(line), "%12.3f us  %-12s a=%u b=%u\n",
                  double(e.when) * 1e6 / double(freq_hz),
                  trace_kind_name(e.kind), e.a, e.b);
    os << line;
  }
  if (dropped_ > 0)
    os << "(" << dropped_ << " older events dropped)\n";
  return os.str();
}

}  // namespace minova::sim
