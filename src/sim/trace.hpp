// Kernel event tracing.
//
// A bounded ring buffer of typed events with simulated timestamps. The
// Mini-NOVA kernel emits VM switches, hypercalls, interrupt routing,
// hardware-task grants and PCAP activity; tests and tools read the buffer
// back or render it as text. Tracing is off by default and costs nothing
// when disabled (a real kernel would compile it out; here one branch).
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace minova::sim {

enum class TraceKind : u8 {
  kVmSwitch = 0,   // a = from PD id (~0 none), b = to PD id
  kHypercall,      // a = hypercall number, b = caller PD id
  kIrq,            // a = GIC source, b = owner PD id (~0 kernel)
  kVirqInject,     // a = virq number, b = PD id
  kHwGrant,        // a = task id, b = client PD id
  kHwReclaim,      // a = PRR index, b = previous client PD id
  kPcapStart,      // a = task id, b = PRR index
  kPcapDone,       // a = task id, b = PRR index
  kGuestFault,     // a = FSR status, b = PD id
};

const char* trace_kind_name(TraceKind k);

struct TraceEvent {
  cycles_t when = 0;
  TraceKind kind{};
  u32 a = 0;
  u32 b = 0;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 4096) : capacity_(capacity) {}

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void emit(cycles_t when, TraceKind kind, u32 a, u32 b) {
    if (!enabled_) return;
    if (events_.size() == capacity_) {
      events_[head_] = TraceEvent{when, kind, a, b};
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    } else {
      events_.push_back(TraceEvent{when, kind, a, b});
    }
  }

  /// Events in chronological order (oldest first).
  std::vector<TraceEvent> snapshot() const;

  /// Count of events of one kind currently in the buffer.
  std::size_t count(TraceKind kind) const;

  /// Human-readable dump: one line per event with the timestamp in µs.
  std::string to_string(u64 freq_hz) const;

  std::size_t size() const { return events_.size(); }
  u64 dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;  // oldest element once the ring wrapped
  u64 dropped_ = 0;
};

}  // namespace minova::sim
