// Simulated CPU clock.
//
// All timing in the simulator is expressed in CPU cycles of the modeled
// 660 MHz Cortex-A9 (the frequency of the paper's Zynq-7000 evaluation
// board). Conversions to microseconds are provided for reporting; they are
// exact rational conversions, not floating-point accumulation, so long runs
// do not drift.
#pragma once

#include "util/types.hpp"

namespace minova::sim {

class Clock {
 public:
  static constexpr u64 kDefaultFreqHz = 660'000'000ull;

  explicit Clock(u64 freq_hz = kDefaultFreqHz) noexcept : freq_hz_(freq_hz) {}

  cycles_t now() const noexcept { return now_; }
  u64 freq_hz() const noexcept { return freq_hz_; }

  void advance(cycles_t cycles) noexcept { now_ += cycles; }

  /// Jump directly to an absolute time (used by the event loop when the CPU
  /// is idle and the next event is in the future). Never moves backwards.
  void advance_to(cycles_t t) noexcept {
    if (t > now_) now_ = t;
  }

  /// Set the absolute time, possibly backwards. This exists for one caller
  /// only: the SMP run loop time-multiplexes N simulated cores onto this
  /// single clock and rewinds it to the lagging core's local time before
  /// each slice (DESIGN.md §13). Device models must never call this.
  void set_time(cycles_t t) noexcept { now_ = t; }

  double cycles_to_us(cycles_t c) const noexcept {
    return double(c) * 1e6 / double(freq_hz_);
  }
  double now_us() const noexcept { return cycles_to_us(now_); }

  cycles_t us_to_cycles(double us) const noexcept {
    return cycles_t(us * double(freq_hz_) / 1e6);
  }
  cycles_t ms_to_cycles(double ms) const noexcept {
    return us_to_cycles(ms * 1000.0);
  }

 private:
  u64 freq_hz_;
  cycles_t now_ = 0;
};

}  // namespace minova::sim
