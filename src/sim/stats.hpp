// Lightweight statistics registry.
//
// Components register named counters and latency accumulators; benches and
// tests read them back to validate behaviour (e.g. cache miss growth with
// guest count) without plumbing bespoke probes through every layer.
//
// Hot paths must not pay a string hash per event: components resolve a
// name once (usually at construction) into a `CounterHandle` — a stable
// pointer to the counter's slot — and bump through it. Handles stay valid
// for the registry's lifetime: counter nodes are never erased, and
// `reset()` zeroes values in place instead of clearing the map.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace minova::sim {

/// Interned reference to one named counter. Cheap to copy; bumping is a
/// single pointer-indirect increment (no hashing, no lookup).
class CounterHandle {
 public:
  CounterHandle() = default;

  void inc(u64 n = 1) { *slot_ += n; }
  CounterHandle& operator+=(u64 n) {
    *slot_ += n;
    return *this;
  }
  CounterHandle& operator++() {
    ++*slot_;
    return *this;
  }
  u64 value() const { return slot_ == nullptr ? 0 : *slot_; }
  explicit operator bool() const { return slot_ != nullptr; }

 private:
  friend class StatsRegistry;
  explicit CounterHandle(u64* slot) : slot_(slot) {}
  u64* slot_ = nullptr;
};

/// Accumulates samples of a latency (or any scalar) and exposes summary
/// statistics. Deliberately keeps all samples: experiment runs are bounded
/// and exact percentiles beat streaming approximations for reproducibility.
///
/// min/max are tracked incrementally so querying them never sorts; the
/// sample vector is only sorted (once, cached via `sorted_`) when a
/// percentile is requested, and `add` keeps the cache valid for monotone
/// streams instead of unconditionally invalidating it.
class LatencyStat {
 public:
  void add(double v) {
    if (samples_.empty()) {
      if (samples_.capacity() == 0) samples_.reserve(kInitialCapacity);
      min_ = max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
      if (sorted_ && v < samples_.back()) sorted_ = false;
    }
    samples_.push_back(v);
  }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double percentile(double p) const;  // p in [0,100]
  void clear() {
    samples_.clear();
    sorted_ = true;
    min_ = 0.0;
    max_ = 0.0;
  }
  /// Fold another accumulator into this one. Samples are appended in
  /// `other`'s insertion order, so merging per-core accumulators in core-id
  /// order yields the same vector on every run regardless of host threading.
  void merge(const LatencyStat& other);
  const std::vector<double>& samples() const { return samples_; }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;  // empty vector is trivially sorted
  double min_ = 0.0;
  double max_ = 0.0;
  void ensure_sorted() const;
};

class StatsRegistry {
 public:
  u64& counter(const std::string& name) { return counters_[name]; }
  u64 counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  /// Resolve `name` once into a stable handle. Valid for the registry's
  /// lifetime (survives `reset()`).
  CounterHandle handle(const std::string& name) {
    return CounterHandle(&counters_[name]);
  }

  LatencyStat& latency(const std::string& name) { return latencies_[name]; }
  const LatencyStat* find_latency(const std::string& name) const {
    auto it = latencies_.find(name);
    return it == latencies_.end() ? nullptr : &it->second;
  }

  /// Zero every counter in place (interned handles stay valid) and drop
  /// all latency accumulators.
  void reset();

  /// Key-wise accumulate another registry into this one: counter values add,
  /// latency stats merge. Keys live in std::map, so the resulting iteration
  /// (and thus any JSON emit) order is lexicographic and independent of the
  /// merge order — golden diffs stay byte-stable.
  void merge_from(const StatsRegistry& other);

  const std::map<std::string, u64>& counters() const { return counters_; }
  const std::map<std::string, LatencyStat>& latencies() const {
    return latencies_;
  }

 private:
  std::map<std::string, u64> counters_;
  std::map<std::string, LatencyStat> latencies_;
};

}  // namespace minova::sim
