// Lightweight statistics registry.
//
// Components register named counters and latency accumulators; benches and
// tests read them back to validate behaviour (e.g. cache miss growth with
// guest count) without plumbing bespoke probes through every layer.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace minova::sim {

/// Accumulates samples of a latency (or any scalar) and exposes summary
/// statistics. Deliberately keeps all samples: experiment runs are bounded
/// and exact percentiles beat streaming approximations for reproducibility.
class LatencyStat {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double percentile(double p) const;  // p in [0,100]
  void clear() { samples_.clear(); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

class StatsRegistry {
 public:
  u64& counter(const std::string& name) { return counters_[name]; }
  u64 counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  LatencyStat& latency(const std::string& name) { return latencies_[name]; }
  const LatencyStat* find_latency(const std::string& name) const {
    auto it = latencies_.find(name);
    return it == latencies_.end() ? nullptr : &it->second;
  }

  void reset();

  const std::map<std::string, u64>& counters() const { return counters_; }
  const std::map<std::string, LatencyStat>& latencies() const {
    return latencies_;
  }

 private:
  std::map<std::string, u64> counters_;
  std::map<std::string, LatencyStat> latencies_;
};

}  // namespace minova::sim
