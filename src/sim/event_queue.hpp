// Discrete-event queue driving asynchronous devices.
//
// The CPU side of the simulation advances the clock by explicit cost
// accounting; devices with their own latency (timers, PCAP transfers, DMA,
// hardware-task completion) schedule callbacks at absolute cycle times.
// After every quantum of CPU progress, the kernel loop calls
// `run_due(clock.now())` so device events interleave deterministically with
// software execution.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "sim/clock.hpp"
#include "util/types.hpp"

namespace minova::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = u64;

  /// Schedule `cb` to fire once the clock reaches `when` (absolute cycles).
  EventId schedule_at(cycles_t when, Callback cb);

  /// Cancel a pending event. Returns false if it already fired/was cancelled.
  bool cancel(EventId id);

  /// Fire every event with deadline <= `now`, in deadline order; ties fire
  /// in scheduling order (stable). Events scheduled by callbacks that are
  /// also due are fired in the same call.
  /// Returns the number of events fired.
  std::size_t run_due(cycles_t now);

  /// Deadline of the earliest pending event, or no value if empty.
  bool next_deadline(cycles_t& out) const;

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

 private:
  struct Event {
    cycles_t when;
    u64 seq;
    EventId id;
    // Ordered as a min-heap on (when, seq).
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  // Callback storage indexed by id; empty function == cancelled.
  std::vector<Callback> callbacks_;
  u64 next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace minova::sim
