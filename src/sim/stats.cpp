#include "sim/stats.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace minova::sim {

void LatencyStat::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyStat::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         double(samples_.size());
}

double LatencyStat::min() const {
  MINOVA_CHECK(!samples_.empty());
  return min_;
}

double LatencyStat::max() const {
  MINOVA_CHECK(!samples_.empty());
  return max_;
}

double LatencyStat::percentile(double p) const {
  MINOVA_CHECK(!samples_.empty());
  MINOVA_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  const double idx = p / 100.0 * double(samples_.size() - 1);
  const std::size_t lo = std::size_t(idx);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - double(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void StatsRegistry::reset() {
  // Keep the counter nodes: CounterHandles point into them.
  for (auto& [name, value] : counters_) value = 0;
  latencies_.clear();
}

}  // namespace minova::sim
