#include "sim/stats.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace minova::sim {

void LatencyStat::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyStat::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         double(samples_.size());
}

double LatencyStat::min() const {
  MINOVA_CHECK(!samples_.empty());
  return min_;
}

double LatencyStat::max() const {
  MINOVA_CHECK(!samples_.empty());
  return max_;
}

double LatencyStat::percentile(double p) const {
  MINOVA_CHECK(!samples_.empty());
  MINOVA_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  const double idx = p / 100.0 * double(samples_.size() - 1);
  const std::size_t lo = std::size_t(idx);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - double(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void LatencyStat::merge(const LatencyStat& other) {
  if (other.samples_.empty()) return;
  if (samples_.empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  // Appending a foreign run generally breaks sortedness; recompute lazily.
  if (sorted_ && !(other.sorted_ && (samples_.empty() ||
                                     other.samples_.front() >=
                                         samples_.back()))) {
    sorted_ = false;
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

void StatsRegistry::merge_from(const StatsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, stat] : other.latencies_)
    latencies_[name].merge(stat);
}

void StatsRegistry::reset() {
  // Keep the counter nodes: CounterHandles point into them.
  for (auto& [name, value] : counters_) value = 0;
  latencies_.clear();
}

}  // namespace minova::sim
