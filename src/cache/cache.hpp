// Set-associative cache model with cycle accounting.
//
// Physically-indexed, physically-tagged (PIPT), true-LRU replacement,
// write-back write-allocate — matching the Cortex-A9 L1 data cache and the
// PL310 L2 of the paper's platform closely enough that the *mechanism*
// behind Table III (kernel entry paths evicted by guest working sets as the
// VM count grows) is reproduced by construction, not curve-fitted.
//
// The model tracks tags and dirty bits only; data always lives in PhysMem.
// That is exact for a PIPT hierarchy with no duplicate physical mappings —
// precisely the property the paper relies on to avoid flushes on VM switch.
#pragma once

#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace minova::cache {

/// Victim selection. The Cortex-A9 L1 caches and the PL310 L2 default to
/// pseudo-random replacement; true LRU is kept for tests and ablations.
enum class ReplacementPolicy : u8 { kRandom, kLru };

struct CacheConfig {
  std::string name;
  u32 size_bytes = 32 * kKiB;
  u32 line_bytes = 32;
  u32 ways = 4;
  u32 hit_cycles = 1;  // access latency on hit
  ReplacementPolicy policy = ReplacementPolicy::kRandom;
};

struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 writebacks = 0;
  u64 flushes = 0;
  double miss_rate() const {
    const u64 total = hits + misses;
    return total == 0 ? 0.0 : double(misses) / double(total);
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  struct AccessResult {
    bool hit = false;
    bool writeback = false;       // a dirty victim was evicted
    paddr_t victim_line = 0;      // line address of the victim (if any)
    bool evicted_valid = false;   // a valid (clean or dirty) victim existed
  };

  /// Look up `pa`; on miss, allocate the line (evicting LRU). `write` marks
  /// the line dirty. Returns hit/miss and victim info for the next level.
  AccessResult access(paddr_t pa, bool write);

  /// Probe without side effects.
  bool contains(paddr_t pa) const;

  /// Invalidate everything (no writeback accounting — used for reset).
  void invalidate_all();

  /// Clean+invalidate everything; returns number of dirty lines written
  /// back (the caller charges the cycles).
  u32 flush_all();

  /// Invalidate a single line by address if present; returns true if it was
  /// dirty (caller charges a writeback).
  bool invalidate_line(paddr_t pa);

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  u32 num_sets() const { return sets_; }

 private:
  struct Line {
    bool dirty = false;
    u64 lru = 0;  // last-use stamp (maintained only under kLru)
  };

  // The tag/valid state lives in a flat structure-of-arrays word per way:
  // `tags_[set*ways + w]` holds the line address, or kInvalidTag when the
  // way is empty. The hit scan — the hottest loop in the whole simulator —
  // then compares a contiguous run of u64s against one key, which the
  // compiler turns into SIMD compares instead of a load/branch chain over
  // 24-byte Line records.
  static constexpr paddr_t kInvalidTag = ~paddr_t(0);

  u32 set_index(paddr_t pa) const {
    return u32((pa >> line_shift_) & (sets_ - 1));
  }
  paddr_t line_addr(paddr_t pa) const { return pa >> line_shift_; }

  CacheConfig cfg_;
  u32 sets_;
  u32 line_shift_;
  u64 use_clock_ = 0;
  u32 lfsr_ = 0xACE1u;  // deterministic pseudo-random victim source
  std::vector<paddr_t> tags_;  // sets_ * ways, row-major by set
  std::vector<Line> lines_;    // parallel metadata (dirty/lru)
  CacheStats stats_;
};

}  // namespace minova::cache
