#include "cache/cache.hpp"

#include <bit>

namespace minova::cache {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  MINOVA_CHECK(is_pow2(cfg.line_bytes));
  MINOVA_CHECK(cfg.ways > 0);
  MINOVA_CHECK(cfg.size_bytes % (cfg.line_bytes * cfg.ways) == 0);
  sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.ways);
  MINOVA_CHECK(is_pow2(sets_));
  line_shift_ = u32(std::countr_zero(cfg.line_bytes));
  lines_.resize(std::size_t(sets_) * cfg.ways);
}

Cache::AccessResult Cache::access(paddr_t pa, bool write) {
  const u32 set = set_index(pa);
  const paddr_t tag = line_addr(pa);
  Line* base = &lines_[std::size_t(set) * cfg_.ways];

  // Hit path.
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == tag) {
      ln.lru = ++use_clock_;
      ln.dirty = ln.dirty || write;
      ++stats_.hits;
      return AccessResult{.hit = true};
    }
  }

  // Miss: pick an invalid way, else true-LRU victim.
  ++stats_.misses;
  Line* victim = nullptr;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
  }
  AccessResult res{};
  if (victim == nullptr) {
    if (cfg_.policy == ReplacementPolicy::kLru) {
      victim = base;
      for (u32 w = 1; w < cfg_.ways; ++w)
        if (base[w].lru < victim->lru) victim = &base[w];
    } else {
      // 16-bit Galois LFSR, as in the A9/PL310 pseudo-random generators.
      lfsr_ = (lfsr_ >> 1) ^ ((lfsr_ & 1u) ? 0xB400u : 0u);
      victim = &base[lfsr_ % cfg_.ways];
    }
    ++stats_.evictions;
    res.evicted_valid = true;
    res.victim_line = victim->tag << line_shift_;
    if (victim->dirty) {
      res.writeback = true;
      ++stats_.writebacks;
    }
  }
  victim->valid = true;
  victim->dirty = write;
  victim->tag = tag;
  victim->lru = ++use_clock_;
  return res;
}

bool Cache::contains(paddr_t pa) const {
  const u32 set = set_index(pa);
  const paddr_t tag = line_addr(pa);
  const Line* base = &lines_[std::size_t(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void Cache::invalidate_all() {
  for (auto& ln : lines_) ln = Line{};
}

u32 Cache::flush_all() {
  u32 dirty = 0;
  for (auto& ln : lines_) {
    if (ln.valid && ln.dirty) ++dirty;
    ln = Line{};
  }
  stats_.writebacks += dirty;
  ++stats_.flushes;
  return dirty;
}

bool Cache::invalidate_line(paddr_t pa) {
  const u32 set = set_index(pa);
  const paddr_t tag = line_addr(pa);
  Line* base = &lines_[std::size_t(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Line& ln = base[w];
    if (ln.valid && ln.tag == tag) {
      const bool was_dirty = ln.dirty;
      ln = Line{};
      if (was_dirty) ++stats_.writebacks;
      return was_dirty;
    }
  }
  return false;
}

}  // namespace minova::cache
