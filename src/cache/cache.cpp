#include "cache/cache.hpp"

#include <algorithm>
#include <bit>

namespace minova::cache {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  MINOVA_CHECK(is_pow2(cfg.line_bytes));
  MINOVA_CHECK(cfg.ways > 0);
  MINOVA_CHECK(cfg.size_bytes % (cfg.line_bytes * cfg.ways) == 0);
  sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.ways);
  MINOVA_CHECK(is_pow2(sets_));
  line_shift_ = u32(std::countr_zero(cfg.line_bytes));
  tags_.assign(std::size_t(sets_) * cfg.ways, kInvalidTag);
  lines_.resize(std::size_t(sets_) * cfg.ways);
}

Cache::AccessResult Cache::access(paddr_t pa, bool write) {
  const u32 set = set_index(pa);
  const paddr_t tag = line_addr(pa);
  const std::size_t base = std::size_t(set) * cfg_.ways;
  paddr_t* tagp = &tags_[base];
  const u32 ways = cfg_.ways;

  // Hit path: branchless scan over the SoA tag row. A tag lives in at most
  // one way, so order of assignment doesn't matter and the loop vectorizes.
  u32 hit_way = ways;
  for (u32 w = 0; w < ways; ++w) {
    if (tagp[w] == tag) hit_way = w;
  }
  if (hit_way != ways) {
    Line& ln = lines_[base + hit_way];
    // Under pseudo-random replacement the lru stamp is never read, so the
    // global use-clock bump is skipped entirely on the hot path.
    if (cfg_.policy == ReplacementPolicy::kLru) ln.lru = ++use_clock_;
    ln.dirty = ln.dirty || write;
    ++stats_.hits;
    return AccessResult{.hit = true};
  }

  // Miss: pick the first invalid way, else the policy's victim.
  ++stats_.misses;
  u32 victim_way = ways;
  for (u32 w = 0; w < ways; ++w) {
    if (tagp[w] == kInvalidTag) {
      victim_way = w;
      break;
    }
  }
  AccessResult res{};
  if (victim_way == ways) {
    if (cfg_.policy == ReplacementPolicy::kLru) {
      victim_way = 0;
      for (u32 w = 1; w < ways; ++w)
        if (lines_[base + w].lru < lines_[base + victim_way].lru)
          victim_way = w;
    } else {
      // 16-bit Galois LFSR, as in the A9/PL310 pseudo-random generators.
      lfsr_ = (lfsr_ >> 1) ^ ((lfsr_ & 1u) ? 0xB400u : 0u);
      victim_way = lfsr_ % ways;
    }
    ++stats_.evictions;
    res.evicted_valid = true;
    res.victim_line = tagp[victim_way] << line_shift_;
    if (lines_[base + victim_way].dirty) {
      res.writeback = true;
      ++stats_.writebacks;
    }
  }
  Line& victim = lines_[base + victim_way];
  tagp[victim_way] = tag;
  victim.dirty = write;
  if (cfg_.policy == ReplacementPolicy::kLru) victim.lru = ++use_clock_;
  return res;
}

bool Cache::contains(paddr_t pa) const {
  const u32 set = set_index(pa);
  const paddr_t tag = line_addr(pa);
  const paddr_t* tagp = &tags_[std::size_t(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w)
    if (tagp[w] == tag) return true;
  return false;
}

void Cache::invalidate_all() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  for (auto& ln : lines_) ln = Line{};
}

u32 Cache::flush_all() {
  u32 dirty = 0;
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] != kInvalidTag && lines_[i].dirty) ++dirty;
    tags_[i] = kInvalidTag;
    lines_[i] = Line{};
  }
  stats_.writebacks += dirty;
  ++stats_.flushes;
  return dirty;
}

bool Cache::invalidate_line(paddr_t pa) {
  const u32 set = set_index(pa);
  const paddr_t tag = line_addr(pa);
  const std::size_t base = std::size_t(set) * cfg_.ways;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (tags_[base + w] == tag) {
      const bool was_dirty = lines_[base + w].dirty;
      tags_[base + w] = kInvalidTag;
      lines_[base + w] = Line{};
      if (was_dirty) ++stats_.writebacks;
      return was_dirty;
    }
  }
  return false;
}

}  // namespace minova::cache
