#include "cache/hierarchy.hpp"

namespace minova::cache {

MemHierarchy::MemHierarchy(const HierarchyConfig& cfg)
    : cfg_(cfg), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2) {}

cycles_t MemHierarchy::access_through(Cache& l1, paddr_t pa, bool write) {
  if (!cfg_.enabled) return cfg_.dram_cycles;

  cycles_t cost = l1.config().hit_cycles;
  const auto r1 = l1.access(pa, write);
  if (r1.hit) return cost;
  if (r1.writeback) {
    // Dirty L1 victim is written back into L2.
    cost += cfg_.writeback_cycles;
    l2_.access(r1.victim_line, /*write=*/true);
  }
  cost += l2_.config().hit_cycles;
  const auto r2 = l2_.access(pa, /*write=*/false);  // fill, dirtied on wb only
  if (r2.hit) return cost;
  if (r2.writeback) cost += cfg_.writeback_cycles;
  cost += cfg_.dram_cycles;
  return cost;
}

cycles_t MemHierarchy::access_data(paddr_t pa, bool write) {
  return access_through(l1d_, pa, write);
}

cycles_t MemHierarchy::access_ifetch(paddr_t pa) {
  return access_through(l1i_, pa, /*write=*/false);
}

cycles_t MemHierarchy::access_walk(paddr_t pa) {
  if (!cfg_.enabled) return cfg_.dram_cycles;
  cycles_t cost = l2_.config().hit_cycles;
  const auto r = l2_.access(pa, /*write=*/false);
  if (!r.hit) {
    if (r.writeback) cost += cfg_.writeback_cycles;
    cost += cfg_.dram_cycles;
  }
  return cost;
}

cycles_t MemHierarchy::flush_all() {
  const u32 d1 = l1d_.flush_all();
  l1i_.flush_all();
  const u32 d2 = l2_.flush_all();
  // Each dirty line pays a posted writeback; walking the tags costs roughly
  // one cycle per L1 line + per L2 line (set/way iteration).
  const u32 tag_walk = l1d_.config().size_bytes / l1d_.config().line_bytes +
                       l1i_.config().size_bytes / l1i_.config().line_bytes +
                       l2_.config().size_bytes / l2_.config().line_bytes;
  return cycles_t(tag_walk) / 8 + cycles_t(d1 + d2) * cfg_.writeback_cycles;
}

cycles_t MemHierarchy::invalidate_icache() {
  l1i_.invalidate_all();
  return l1i_.config().size_bytes / l1i_.config().line_bytes / 8;
}

void MemHierarchy::reset_stats() {
  l1i_.reset_stats();
  l1d_.reset_stats();
  l2_.reset_stats();
}

}  // namespace minova::cache
