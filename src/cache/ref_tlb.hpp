// Reference TLB: the pre-fast-path linear-scan implementation, kept
// verbatim as the behavioral golden model for the hash-indexed `Tlb`.
//
// `Tlb` (tlb.hpp) is required to produce bit-identical hit/miss sequences,
// replacement decisions and statistics to this implementation — that is
// the invariant that lets host-side lookup cost drop without moving a
// single simulated cycle (DESIGN.md §10). The differential test
// (tests/cache/tlb_diff_test.cpp) drives both with randomized traces and
// compares entry arrays slot-for-slot; bench_selftime uses this class as
// the "before" engine for host-time speedup measurements.
//
// Do not optimize this class: its value is being the O(N) original.
#pragma once

#include <vector>

#include "cache/tlb.hpp"
#include "util/assert.hpp"

namespace minova::cache {

class RefTlb {
 public:
  explicit RefTlb(u32 entries = 128) { entries_.resize(entries); }

  const TlbEntry* lookup(u32 asid, vaddr_t va) {
    for (auto& e : entries_) {
      if (matches(e, asid, va)) {
        e.lru = ++use_clock_;
        ++stats_.hits;
        return &e;
      }
    }
    ++stats_.misses;
    return nullptr;
  }

  const TlbEntry* insert(const TlbEntry& entry) {
    MINOVA_CHECK(entry.valid);
    // Replace an existing entry for the same page first (re-walk after a
    // permission update), else an invalid slot, else LRU.
    TlbEntry* slot = nullptr;
    for (auto& e : entries_) {
      if (e.valid && e.vpage == entry.vpage && e.large == entry.large &&
          (e.global || e.asid == entry.asid)) {
        slot = &e;
        break;
      }
    }
    if (slot == nullptr) {
      for (auto& e : entries_) {
        if (!e.valid) {
          slot = &e;
          break;
        }
      }
    }
    if (slot == nullptr) {
      slot = &entries_.front();
      for (auto& e : entries_)
        if (e.lru < slot->lru) slot = &e;
    }
    *slot = entry;
    slot->lru = ++use_clock_;
    return slot;
  }

  void flush_all() {
    for (auto& e : entries_) e.valid = false;
    ++stats_.flushes;
  }

  void flush_asid(u32 asid) {
    for (auto& e : entries_)
      if (e.valid && !e.global && e.asid == asid) e.valid = false;
    ++stats_.asid_flushes;
  }

  void flush_va(vaddr_t va) {
    const vaddr_t vpage = va >> 12;
    for (auto& e : entries_) {
      if (!e.valid) continue;
      const bool hit =
          e.large ? (e.vpage >> 8) == (vpage >> 8) : e.vpage == vpage;
      if (hit) e.valid = false;
    }
    ++stats_.va_flushes;
  }

  const TlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  u32 capacity() const { return u32(entries_.size()); }
  u32 valid_count() const {
    u32 n = 0;
    for (const auto& e : entries_)
      if (e.valid) ++n;
    return n;
  }
  const std::vector<TlbEntry>& entry_array() const { return entries_; }

 private:
  static bool matches(const TlbEntry& e, u32 asid, vaddr_t va) {
    if (!e.valid) return false;
    if (!e.global && e.asid != asid) return false;
    const vaddr_t vpage = va >> 12;
    if (e.large) return (e.vpage >> 8) == (vpage >> 8);
    return e.vpage == vpage;
  }

  std::vector<TlbEntry> entries_;
  u64 use_clock_ = 0;
  TlbStats stats_;
};

}  // namespace minova::cache
