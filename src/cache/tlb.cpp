#include "cache/tlb.hpp"

#include "util/assert.hpp"

namespace minova::cache {

Tlb::Tlb(u32 entries) { entries_.resize(entries); }

bool Tlb::matches(const TlbEntry& e, u32 asid, vaddr_t va) {
  if (!e.valid) return false;
  if (!e.global && e.asid != asid) return false;
  const vaddr_t vpage = va >> 12;
  if (e.large) {
    // 1 MB section: compare the top 12 bits (va >> 20).
    return (e.vpage >> 8) == (vpage >> 8);
  }
  return e.vpage == vpage;
}

const TlbEntry* Tlb::lookup(u32 asid, vaddr_t va) {
  for (auto& e : entries_) {
    if (matches(e, asid, va)) {
      e.lru = ++use_clock_;
      ++stats_.hits;
      return &e;
    }
  }
  ++stats_.misses;
  return nullptr;
}

void Tlb::insert(const TlbEntry& entry) {
  MINOVA_CHECK(entry.valid);
  // Replace an existing entry for the same page first (re-walk after a
  // permission update), else an invalid slot, else LRU.
  TlbEntry* slot = nullptr;
  for (auto& e : entries_) {
    if (e.valid && e.vpage == entry.vpage && e.large == entry.large &&
        (e.global || e.asid == entry.asid)) {
      slot = &e;
      break;
    }
  }
  if (slot == nullptr) {
    for (auto& e : entries_) {
      if (!e.valid) {
        slot = &e;
        break;
      }
    }
  }
  if (slot == nullptr) {
    slot = &entries_.front();
    for (auto& e : entries_)
      if (e.lru < slot->lru) slot = &e;
  }
  *slot = entry;
  slot->lru = ++use_clock_;
}

void Tlb::flush_all() {
  for (auto& e : entries_) e.valid = false;
  ++stats_.flushes;
}

void Tlb::flush_asid(u32 asid) {
  for (auto& e : entries_)
    if (e.valid && !e.global && e.asid == asid) e.valid = false;
  ++stats_.asid_flushes;
}

void Tlb::flush_va(vaddr_t va) {
  const vaddr_t vpage = va >> 12;
  for (auto& e : entries_) {
    if (!e.valid) continue;
    const bool hit =
        e.large ? (e.vpage >> 8) == (vpage >> 8) : e.vpage == vpage;
    if (hit) e.valid = false;
  }
}

u32 Tlb::valid_count() const {
  u32 n = 0;
  for (const auto& e : entries_)
    if (e.valid) ++n;
  return n;
}

}  // namespace minova::cache
