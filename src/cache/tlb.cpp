#include "cache/tlb.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace minova::cache {

Tlb::Tlb(u32 entries) { entries_.resize(entries); }

bool Tlb::matches(const TlbEntry& e, u32 asid, vaddr_t va) {
  if (!e.valid) return false;
  if (!e.global && e.asid != asid) return false;
  const vaddr_t vpage = va >> 12;
  if (e.large) {
    // 1 MB section: compare the top 12 bits (va >> 20).
    return (e.vpage >> 8) == (vpage >> 8);
  }
  return e.vpage == vpage;
}

void Tlb::index_add(u32 slot) {
  const TlbEntry& e = entries_[slot];
  auto& bucket = e.large ? sect_idx_[u32(e.vpage >> 8)]
                         : page_idx_[u32(e.vpage)];
  bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), slot), slot);
}

void Tlb::index_remove(u32 slot) {
  const TlbEntry& e = entries_[slot];
  auto& idx = e.large ? sect_idx_ : page_idx_;
  const u32 key = e.large ? u32(e.vpage >> 8) : u32(e.vpage);
  auto it = idx.find(key);
  MINOVA_CHECK(it != idx.end());
  auto& bucket = it->second;
  bucket.erase(std::lower_bound(bucket.begin(), bucket.end(), slot));
  if (bucket.empty()) idx.erase(it);
}

const TlbEntry* Tlb::lookup(u32 asid, vaddr_t va) {
  // Candidates: small-page entries indexed under va>>12 and sections
  // indexed under va>>20. Both buckets are sorted by slot; a two-pointer
  // merge visits candidates in ascending slot order so the winner is the
  // same "first matching slot" the linear scan would have found.
  static const std::vector<u32> kEmpty;
  const auto pit = page_idx_.find(u32(va >> 12));
  const auto sit = sect_idx_.find(u32(va >> 20));
  const std::vector<u32>& pages = pit != page_idx_.end() ? pit->second : kEmpty;
  const std::vector<u32>& sects = sit != sect_idx_.end() ? sit->second : kEmpty;
  std::size_t i = 0, j = 0;
  while (i < pages.size() || j < sects.size()) {
    u32 slot;
    if (j >= sects.size() || (i < pages.size() && pages[i] < sects[j]))
      slot = pages[i++];
    else
      slot = sects[j++];
    TlbEntry& e = entries_[slot];
    if (matches(e, asid, va)) {
      e.lru = ++use_clock_;
      ++stats_.hits;
      return &e;
    }
  }
  ++stats_.misses;
  return nullptr;
}

const TlbEntry* Tlb::insert(const TlbEntry& entry) {
  MINOVA_CHECK(entry.valid);
  // Replace an existing entry for the same page first (re-walk after a
  // permission update), else an invalid slot, else LRU. Replacement
  // candidates all live in one index bucket (same vpage, same size class);
  // the bucket walk in slot order reproduces the old full-array scan.
  TlbEntry* slot = nullptr;
  u32 slot_idx = 0;
  {
    const auto& idx = entry.large ? sect_idx_ : page_idx_;
    const u32 key = entry.large ? u32(entry.vpage >> 8) : u32(entry.vpage);
    if (auto it = idx.find(key); it != idx.end()) {
      for (u32 s : it->second) {
        TlbEntry& e = entries_[s];
        if (e.vpage == entry.vpage && (e.global || e.asid == entry.asid)) {
          slot = &e;
          slot_idx = s;
          break;
        }
      }
    }
  }
  if (slot == nullptr && valid_count_ < entries_.size()) {
    for (u32 s = 0; s < u32(entries_.size()); ++s) {
      if (!entries_[s].valid) {
        slot = &entries_[s];
        slot_idx = s;
        break;
      }
    }
  }
  if (slot == nullptr) {
    slot = &entries_.front();
    slot_idx = 0;
    for (u32 s = 0; s < u32(entries_.size()); ++s) {
      if (entries_[s].lru < slot->lru) {
        slot = &entries_[s];
        slot_idx = s;
      }
    }
  }
  if (slot->valid)
    index_remove(slot_idx);
  else
    ++valid_count_;
  *slot = entry;
  slot->lru = ++use_clock_;
  index_add(slot_idx);
  ++gen_;
  return slot;
}

void Tlb::flush_all() {
  for (auto& e : entries_) e.valid = false;
  page_idx_.clear();
  sect_idx_.clear();
  valid_count_ = 0;
  ++stats_.flushes;
  ++gen_;
}

void Tlb::flush_asid(u32 asid) {
  for (u32 s = 0; s < u32(entries_.size()); ++s) {
    TlbEntry& e = entries_[s];
    if (e.valid && !e.global && e.asid == asid) {
      index_remove(s);
      e.valid = false;
      --valid_count_;
    }
  }
  ++stats_.asid_flushes;
  ++gen_;
}

void Tlb::flush_va(vaddr_t va) {
  // Both size classes, all ASIDs: collect the matching slots from the two
  // buckets first (invalidation mutates the buckets being walked).
  std::vector<u32> hit_slots;
  if (auto it = page_idx_.find(u32(va >> 12)); it != page_idx_.end())
    hit_slots = it->second;
  if (auto it = sect_idx_.find(u32(va >> 20)); it != sect_idx_.end())
    hit_slots.insert(hit_slots.end(), it->second.begin(), it->second.end());
  for (u32 s : hit_slots) {
    index_remove(s);
    entries_[s].valid = false;
    --valid_count_;
  }
  ++stats_.va_flushes;
  ++gen_;
}

}  // namespace minova::cache
