// Memory hierarchy: L1 I/D -> unified L2 -> DRAM, with cycle accounting.
//
// Latencies approximate the Zynq-7000 PS (Cortex-A9 r3p0 + PL310 L2):
// L1 hit ~1 cycle pipeline-visible cost, L2 hit ~8 cycles, DRAM ~60 cycles.
// Device (MMIO) accesses bypass the caches and pay a fixed AXI round trip.
#pragma once

#include <functional>

#include "cache/cache.hpp"
#include "util/types.hpp"

namespace minova::cache {

struct HierarchyConfig {
  CacheConfig l1i{.name = "L1I", .size_bytes = 32 * kKiB, .line_bytes = 32,
                  .ways = 4, .hit_cycles = 1};
  CacheConfig l1d{.name = "L1D", .size_bytes = 32 * kKiB, .line_bytes = 32,
                  .ways = 4, .hit_cycles = 1};
  CacheConfig l2{.name = "L2", .size_bytes = 512 * kKiB, .line_bytes = 32,
                 .ways = 8, .hit_cycles = 8};
  u32 dram_cycles = 60;       // L2 miss penalty to DDR
  u32 device_cycles = 35;     // uncached MMIO round trip on the PS AXI
  u32 writeback_cycles = 8;   // posted write cost charged to the evictor
  bool enabled = true;        // caches off => every access pays DRAM cost
};

/// Pure timing/tag model; data movement happens in PhysMem independently.
class MemHierarchy {
 public:
  explicit MemHierarchy(const HierarchyConfig& cfg = {});

  /// Cost of a cached data access at physical address `pa`.
  cycles_t access_data(paddr_t pa, bool write);

  /// Cost of an instruction fetch at physical address `pa`.
  cycles_t access_ifetch(paddr_t pa);

  /// Cost of an uncached device access.
  cycles_t access_device() const { return cfg_.device_cycles; }

  /// Cost of a page-table-walk descriptor fetch. Cortex-A9 walks bypass L1
  /// but may hit in the outer (L2) cache, which is how TLB-miss costs stay
  /// moderate while still growing when guests thrash L2.
  cycles_t access_walk(paddr_t pa);

  /// Clean + invalidate both L1s and L2; returns the cycle cost (dirty
  /// lines pay a writeback each). Models the guest-initiated cache flush
  /// hypercall and kernel cache maintenance.
  cycles_t flush_all();

  /// Invalidate instruction cache only (e.g. after code upload).
  cycles_t invalidate_icache();

  Cache& l1i() { return l1i_; }
  Cache& l1d() { return l1d_; }
  Cache& l2() { return l2_; }
  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }

  const HierarchyConfig& config() const { return cfg_; }
  void set_enabled(bool on) { cfg_.enabled = on; }

  void reset_stats();

 private:
  cycles_t access_through(Cache& l1, paddr_t pa, bool write);

  HierarchyConfig cfg_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
};

}  // namespace minova::cache
