// ASID-tagged TLB model.
//
// The paper's §III.C relies on the Cortex-A9's address-space identifiers to
// avoid TLB flushes on VM switch: each VM gets one unique ASID, and the
// kernel simply reloads CONTEXTIDR. The TLB model therefore keys entries on
// (ASID, virtual page) with a global bit for kernel mappings, and supports
// the three maintenance operations the kernel uses: flush-all, flush-by-
// ASID and flush-by-VA.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace minova::cache {

struct TlbEntry {
  u32 asid = 0;
  vaddr_t vpage = 0;   // va >> 12
  paddr_t ppage = 0;   // pa >> 12
  u32 attrs = 0;       // opaque permission summary cached by the MMU
  bool global = false; // matches any ASID (kernel mappings)
  bool large = false;  // 1 MB section entry (vpage/ppage are still 4K pages
                       // of the section base; match masks low bits)
  bool valid = false;
  u64 lru = 0;
};

struct TlbStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 flushes = 0;
  u64 asid_flushes = 0;
  double miss_rate() const {
    const u64 t = hits + misses;
    return t == 0 ? 0.0 : double(misses) / double(t);
  }
};

class Tlb {
 public:
  /// Fully-associative with `entries` entries (Cortex-A9 main TLB: 128).
  explicit Tlb(u32 entries = 128);

  /// Find a translation for (asid, va). Returns nullptr on miss.
  const TlbEntry* lookup(u32 asid, vaddr_t va);

  void insert(const TlbEntry& entry);

  void flush_all();
  void flush_asid(u32 asid);
  void flush_va(vaddr_t va);  // all ASIDs, both entry sizes

  const TlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  u32 capacity() const { return u32(entries_.size()); }
  u32 valid_count() const;

 private:
  static bool matches(const TlbEntry& e, u32 asid, vaddr_t va);

  std::vector<TlbEntry> entries_;
  u64 use_clock_ = 0;
  TlbStats stats_;
};

}  // namespace minova::cache
