// ASID-tagged TLB model.
//
// The paper's §III.C relies on the Cortex-A9's address-space identifiers to
// avoid TLB flushes on VM switch: each VM gets one unique ASID, and the
// kernel simply reloads CONTEXTIDR. The TLB model therefore keys entries on
// (ASID, virtual page) with a global bit for kernel mappings, and supports
// the three maintenance operations the kernel uses: flush-all, flush-by-
// ASID and flush-by-VA.
//
// Host-side structure (DESIGN.md §10): the array of entries is still the
// fully-associative true-LRU store the simulated replacement decisions are
// defined over, but lookups no longer scan it. Two hash indexes — small
// pages keyed on `va >> 12`, sections keyed on `va >> 20` — map a virtual
// page to the slots that could translate it, so `lookup` is O(1) in the
// TLB size. Index buckets are kept sorted by slot number and the merged
// candidate walk takes the lowest matching slot, which is exactly the
// "first match in array order" the old linear scan produced: hit/miss
// sequences, LRU stamps and therefore every simulated cycle are
// bit-identical to the scanning implementation (pinned by the differential
// test against `RefTlb`).
#pragma once

#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace minova::cache {

struct TlbEntry {
  u32 asid = 0;
  vaddr_t vpage = 0;   // va >> 12
  paddr_t ppage = 0;   // pa >> 12
  u32 attrs = 0;       // opaque permission summary cached by the MMU
  bool global = false; // matches any ASID (kernel mappings)
  bool large = false;  // 1 MB section entry (vpage/ppage are still 4K pages
                       // of the section base; match masks low bits)
  bool valid = false;
  u64 lru = 0;
};

struct TlbStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 flushes = 0;
  u64 asid_flushes = 0;
  u64 va_flushes = 0;
  double miss_rate() const {
    const u64 t = hits + misses;
    return t == 0 ? 0.0 : double(misses) / double(t);
  }
  double hit_rate() const {
    const u64 t = hits + misses;
    return t == 0 ? 0.0 : double(hits) / double(t);
  }
};

class Tlb {
 public:
  /// Fully-associative with `entries` entries (Cortex-A9 main TLB: 128).
  explicit Tlb(u32 entries = 128);

  /// Find a translation for (asid, va). Returns nullptr on miss.
  const TlbEntry* lookup(u32 asid, vaddr_t va);

  /// Record a hit on `e` without re-running the lookup: identical
  /// bookkeeping (LRU stamp + hit count) to the hit path of `lookup`.
  /// Used by the MMU's micro-TLB, which caches the winning entry pointer
  /// and revalidates it against `generation()`.
  void touch(const TlbEntry& e) {
    const_cast<TlbEntry&>(e).lru = ++use_clock_;
    ++stats_.hits;
  }

  /// Returns the slot the entry was written to (stable for the Tlb's
  /// lifetime; invalidated as a translation by any `generation()` change).
  const TlbEntry* insert(const TlbEntry& entry);

  void flush_all();
  void flush_asid(u32 asid);
  void flush_va(vaddr_t va);  // all ASIDs, both entry sizes

  /// Bumped on every mutation of the translation contents (insert or any
  /// flush). Cached entry pointers are valid only while this is unchanged.
  u64 generation() const { return gen_; }

  const TlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  u32 capacity() const { return u32(entries_.size()); }
  u32 valid_count() const { return valid_count_; }

  /// Raw slot array, for the differential test against `RefTlb`.
  const std::vector<TlbEntry>& entry_array() const { return entries_; }

 private:
  static bool matches(const TlbEntry& e, u32 asid, vaddr_t va);

  // A valid slot lives in exactly one bucket: page_idx_[vpage] for small
  // pages, sect_idx_[vpage >> 8] for sections. Buckets stay sorted by slot.
  void index_add(u32 slot);
  void index_remove(u32 slot);

  std::vector<TlbEntry> entries_;
  std::unordered_map<u32, std::vector<u32>> page_idx_;
  std::unordered_map<u32, std::vector<u32>> sect_idx_;
  u32 valid_count_ = 0;
  u64 use_clock_ = 0;
  u64 gen_ = 0;
  TlbStats stats_;
};

}  // namespace minova::cache
