#include "mmu/mmu.hpp"

#include "util/assert.hpp"

namespace minova::mmu {

Mmu::Mmu(mem::PhysMem& table_ram, cache::MemHierarchy& hierarchy,
         cache::Tlb& tlb)
    : ram_(table_ram), hierarchy_(hierarchy), tlb_(tlb) {}

u32 Mmu::pack_attrs(Ap ap, u32 domain, bool xn) {
  return (u32(ap) & 0x7u) | ((domain & 0xFu) << 3) | ((xn ? 1u : 0u) << 7);
}

Mmu::WalkOut Mmu::walk(vaddr_t va, cycles_t& cost) {
  WalkOut out;
  const paddr_t l1_slot = ttbr0_ + l1_index(va) * 4;
  cost += hierarchy_.access_walk(l1_slot);
  const L1Desc l1 = L1Desc::decode(ram_.read32(l1_slot));
  switch (l1.type) {
    case L1Type::kFault:
      out.fault = FaultType::kTranslationL1;
      return out;
    case L1Type::kSection: {
      out.ok = true;
      out.entry.valid = true;
      out.entry.large = true;
      out.entry.asid = asid_;
      out.entry.global = !l1.ng;
      // Store the section base pages so offset math is uniform with small
      // pages (the Tlb matches sections on the top 12 VA bits).
      out.entry.vpage = (va >> 20) << 8;
      out.entry.ppage = l1.section_base >> 12;
      out.entry.attrs = pack_attrs(l1.ap, l1.domain, l1.xn);
      return out;
    }
    case L1Type::kPageTable: {
      const paddr_t l2_slot = l1.l2_base + l2_index(va) * 4;
      cost += hierarchy_.access_walk(l2_slot);
      const L2Desc l2 = L2Desc::decode(ram_.read32(l2_slot));
      if (!l2.valid) {
        out.fault = FaultType::kTranslationL2;
        return out;
      }
      out.ok = true;
      out.entry.valid = true;
      out.entry.large = false;
      out.entry.asid = asid_;
      out.entry.global = !l2.ng;
      out.entry.vpage = va >> 12;
      out.entry.ppage = l2.page_base >> 12;
      out.entry.attrs = pack_attrs(l2.ap, l1.domain, l2.xn);
      return out;
    }
  }
  out.fault = FaultType::kTranslationL1;
  return out;
}

TranslateResult Mmu::translate(vaddr_t va, AccessKind kind, bool privileged) {
  TranslateResult res;
  if (!enabled_) {
    res.pa = va;  // flat mapping with MMU off
    return res;
  }

  // Micro-TLB probe: a hit skips the main TLB's index walk but replays its
  // hit bookkeeping exactly (touch = LRU stamp + hit count), so simulated
  // behaviour cannot diverge from the micro-TLB-less path.
  const vaddr_t vpage = va >> 12;
  MicroEntry& u = ubanks_[active_bank_][vpage & (kMicroTlbEntries - 1)];
  const cache::TlbEntry* entry;
  if (u.entry != nullptr && u.vpage == vpage && u.asid == asid_ &&
      u.gen == tlb_.generation()) {
    ++ustats_.hits;
    tlb_.touch(*u.entry);
    entry = u.entry;
  } else {
    ++ustats_.misses;
    entry = tlb_.lookup(asid_, va);
    if (entry != nullptr)
      u = MicroEntry{entry, vpage, asid_, tlb_.generation()};
  }
  u32 attrs;
  paddr_t pa;
  if (entry != nullptr) {
    res.tlb_hit = true;
    attrs = entry->attrs;
    if (entry->large) {
      pa = (entry->ppage << 12) | (va & (kSectionSize - 1));
    } else {
      pa = (entry->ppage << 12) | (va & (kPageSize - 1));
    }
  } else {
    WalkOut w = walk(va, res.cost);
    if (!w.ok) {
      res.fault = Fault{.type = w.fault,
                        .address = va,
                        .domain = 0,
                        .write = kind == AccessKind::kWrite,
                        .instruction = kind == AccessKind::kExecute};
      return res;
    }
    const cache::TlbEntry* inserted = tlb_.insert(w.entry);
    u = MicroEntry{inserted, vpage, asid_, tlb_.generation()};
    attrs = w.entry.attrs;
    if (w.entry.large) {
      pa = (w.entry.ppage << 12) | (va & (kSectionSize - 1));
    } else {
      pa = (w.entry.ppage << 12) | (va & (kPageSize - 1));
    }
  }

  // Domain check against the *current* DACR (per-access, even on TLB hit).
  const u32 domain = attrs_domain(attrs);
  const DomainMode dm = dacr_get(dacr_, domain);
  if (dm == DomainMode::kNoAccess) {
    res.fault = Fault{.type = FaultType::kDomain,
                      .address = va,
                      .domain = domain,
                      .write = kind == AccessKind::kWrite,
                      .instruction = kind == AccessKind::kExecute};
    return res;
  }
  if (dm == DomainMode::kClient) {
    if (kind == AccessKind::kExecute && attrs_xn(attrs)) {
      res.fault = Fault{.type = FaultType::kExecuteNever,
                        .address = va,
                        .domain = domain,
                        .write = false,
                        .instruction = true};
      return res;
    }
    const bool write = kind == AccessKind::kWrite;
    if (!ap_permits(attrs_ap(attrs), privileged, write)) {
      res.fault = Fault{.type = FaultType::kPermission,
                        .address = va,
                        .domain = domain,
                        .write = write,
                        .instruction = kind == AccessKind::kExecute};
      return res;
    }
  }
  // Manager domain: no checks.
  res.pa = pa;
  return res;
}

}  // namespace minova::mmu
