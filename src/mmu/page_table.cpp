#include "mmu/page_table.hpp"

#include "util/assert.hpp"

namespace minova::mmu {

PageTableAllocator::PageTableAllocator(mem::PhysMem& ram, paddr_t base,
                                       u32 size)
    : ram_(ram), base_(base), size_(size), next_(base) {
  MINOVA_CHECK(ram.contains(base, size));
}

paddr_t PageTableAllocator::alloc(u32 bytes, u32 align, bool is_l1) {
  paddr_t start = 0;
  auto& pool = is_l1 ? free_l1_ : free_l2_;
  if (!pool.empty()) {
    start = pool.back();
    pool.pop_back();
    tables_.at(start).live = true;
  } else {
    start = paddr_t(align_up(next_, align));
    MINOVA_CHECK_MSG(u64(start) + bytes <= u64(base_) + size_,
                     "page-table pool exhausted");
    next_ = start + bytes;
    tables_[start] = Table{is_l1, /*live=*/true};
  }
  // Tables must start out as fault entries (recycled ones still hold their
  // previous owner's descriptors).
  for (u32 off = 0; off < bytes; off += 4) ram_.write32(start + off, 0);
  bytes_live_ += bytes;
  ++live_tables_;
  return start;
}

void PageTableAllocator::free_table(paddr_t pa, bool is_l1, u32 bytes) {
  auto it = tables_.find(pa);
  MINOVA_CHECK_MSG(it != tables_.end() && it->second.is_l1 == is_l1,
                   "free of address not allocated from page-table pool");
  MINOVA_CHECK_MSG(it->second.live, "page-table double free");
  it->second.live = false;
  (is_l1 ? free_l1_ : free_l2_).push_back(pa);
  bytes_live_ -= bytes;
  --live_tables_;
}

paddr_t PageTableAllocator::alloc_l1() {
  return alloc(kL1TableBytes, 16 * kKiB, /*is_l1=*/true);
}
paddr_t PageTableAllocator::alloc_l2() {
  return alloc(kL2TableBytes, 1 * kKiB, /*is_l1=*/false);
}
void PageTableAllocator::free_l1(paddr_t pa) {
  free_table(pa, /*is_l1=*/true, kL1TableBytes);
}
void PageTableAllocator::free_l2(paddr_t pa) {
  free_table(pa, /*is_l1=*/false, kL2TableBytes);
}

AddressSpace::AddressSpace(mem::PhysMem& ram, PageTableAllocator& alloc)
    : ram_(ram), alloc_(alloc), l1_base_(alloc.alloc_l1()) {}

AddressSpace::~AddressSpace() {
  for (const paddr_t l2 : l2_tables_) alloc_.free_l2(l2);
  alloc_.free_l1(l1_base_);
}

u32 AddressSpace::read_l1(u32 index) const {
  return ram_.read32(l1_base_ + index * 4);
}

void AddressSpace::write_l1(u32 index, u32 raw) {
  ram_.write32(l1_base_ + index * 4, raw);
  ++descriptor_writes_;
}

void AddressSpace::map_section(vaddr_t va, paddr_t pa, const MapAttrs& attrs) {
  MINOVA_CHECK(is_aligned(va, kSectionSize));
  MINOVA_CHECK(is_aligned(pa, kSectionSize));
  L1Desc d;
  d.type = L1Type::kSection;
  d.section_base = pa;
  d.ap = attrs.ap;
  d.domain = attrs.domain;
  d.ng = attrs.ng;
  d.xn = attrs.xn;
  write_l1(l1_index(va), d.encode());
}

void AddressSpace::map_page(vaddr_t va, paddr_t pa, const MapAttrs& attrs) {
  MINOVA_CHECK(is_aligned(va, kPageSize));
  MINOVA_CHECK(is_aligned(pa, kPageSize));
  const u32 idx1 = l1_index(va);
  L1Desc l1 = L1Desc::decode(read_l1(idx1));
  if (l1.type != L1Type::kPageTable) {
    MINOVA_CHECK_MSG(l1.type == L1Type::kFault,
                     "cannot map a page inside an existing section");
    l1 = L1Desc{};
    l1.type = L1Type::kPageTable;
    l1.l2_base = alloc_.alloc_l2();
    l1.domain = attrs.domain;
    l2_tables_.push_back(l1.l2_base);
    write_l1(idx1, l1.encode());
  }
  L2Desc l2;
  l2.valid = true;
  l2.page_base = pa;
  l2.ap = attrs.ap;
  l2.ng = attrs.ng;
  l2.xn = attrs.xn;
  ram_.write32(l1.l2_base + l2_index(va) * 4, l2.encode());
  ++descriptor_writes_;
}

void AddressSpace::map_range(vaddr_t va, paddr_t pa, u32 len,
                             const MapAttrs& attrs) {
  MINOVA_CHECK(is_aligned(va, kPageSize));
  MINOVA_CHECK(is_aligned(pa, kPageSize));
  const u32 pages = u32(align_up(len, kPageSize)) / kPageSize;
  for (u32 i = 0; i < pages; ++i)
    map_page(va + i * kPageSize, pa + i * kPageSize, attrs);
}

bool AddressSpace::unmap_page(vaddr_t va) {
  const u32 idx1 = l1_index(va);
  const L1Desc l1 = L1Desc::decode(read_l1(idx1));
  switch (l1.type) {
    case L1Type::kFault:
      return false;
    case L1Type::kSection:
      write_l1(idx1, 0);
      return true;
    case L1Type::kPageTable: {
      const paddr_t slot = l1.l2_base + l2_index(va) * 4;
      if (!L2Desc::decode(ram_.read32(slot)).valid) return false;
      ram_.write32(slot, 0);
      ++descriptor_writes_;
      return true;
    }
  }
  return false;
}

bool AddressSpace::ensure_l2(vaddr_t va, u32 domain) {
  const u32 idx1 = l1_index(va);
  const L1Desc l1 = L1Desc::decode(read_l1(idx1));
  if (l1.type == L1Type::kPageTable) return true;
  if (l1.type == L1Type::kSection) return false;
  L1Desc fresh;
  fresh.type = L1Type::kPageTable;
  fresh.l2_base = alloc_.alloc_l2();
  fresh.domain = domain;
  l2_tables_.push_back(fresh.l2_base);
  write_l1(idx1, fresh.encode());
  return true;
}

bool AddressSpace::protect_page(vaddr_t va, Ap ap) {
  const u32 idx1 = l1_index(va);
  const L1Desc l1 = L1Desc::decode(read_l1(idx1));
  if (l1.type != L1Type::kPageTable) return false;
  const paddr_t slot = l1.l2_base + l2_index(va) * 4;
  L2Desc l2 = L2Desc::decode(ram_.read32(slot));
  if (!l2.valid) return false;
  l2.ap = ap;
  ram_.write32(slot, l2.encode());
  ++descriptor_writes_;
  return true;
}

std::optional<paddr_t> AddressSpace::translate_raw(vaddr_t va) const {
  const L1Desc l1 = L1Desc::decode(read_l1(l1_index(va)));
  switch (l1.type) {
    case L1Type::kFault:
      return std::nullopt;
    case L1Type::kSection:
      return l1.section_base | (va & (kSectionSize - 1));
    case L1Type::kPageTable: {
      const L2Desc l2 =
          L2Desc::decode(ram_.read32(l1.l2_base + l2_index(va) * 4));
      if (!l2.valid) return std::nullopt;
      return l2.page_base | (va & (kPageSize - 1));
    }
  }
  return std::nullopt;
}

bool AddressSpace::l1_present(vaddr_t va) const {
  return L1Desc::decode(read_l1(l1_index(va))).type != L1Type::kFault;
}

}  // namespace minova::mmu
