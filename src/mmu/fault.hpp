// MMU fault reporting, mirroring the ARM Fault Status Register encodings
// Mini-NOVA's abort handler decodes (paper §III: ABT exceptions drive the
// virtualized memory-space management).
#pragma once

#include "util/types.hpp"

namespace minova::mmu {

enum class FaultType : u8 {
  kNone = 0,
  kTranslationL1,  // no L1 descriptor
  kTranslationL2,  // no L2 descriptor
  kDomain,         // DACR says NoAccess for the descriptor's domain
  kPermission,     // AP bits deny the access
  kExternalAbort,  // bus error (unmapped physical address)
  kExecuteNever,   // XN page executed
};

struct Fault {
  FaultType type = FaultType::kNone;
  vaddr_t address = 0;   // faulting VA (-> FAR)
  u32 domain = 0;
  bool write = false;
  bool instruction = false;  // prefetch abort vs data abort

  bool is_fault() const { return type != FaultType::kNone; }

  /// ARM short-descriptor FSR[3:0] encoding (subset).
  u32 fsr_status() const {
    switch (type) {
      case FaultType::kNone: return 0b0000;
      case FaultType::kTranslationL1: return 0b0101;
      case FaultType::kTranslationL2: return 0b0111;
      case FaultType::kDomain: return 0b1001;
      case FaultType::kPermission: return 0b1101;
      case FaultType::kExternalAbort: return 0b1000;
      case FaultType::kExecuteNever: return 0b1101;
    }
    return 0;
  }
};

constexpr const char* fault_name(FaultType t) {
  switch (t) {
    case FaultType::kNone: return "none";
    case FaultType::kTranslationL1: return "translation-L1";
    case FaultType::kTranslationL2: return "translation-L2";
    case FaultType::kDomain: return "domain";
    case FaultType::kPermission: return "permission";
    case FaultType::kExternalAbort: return "external-abort";
    case FaultType::kExecuteNever: return "execute-never";
  }
  return "?";
}

}  // namespace minova::mmu
