// Page table construction in simulated physical memory.
//
// `PageTableAllocator` carves L1/L2 tables out of a kernel-owned physical
// region; `AddressSpace` is the per-VM (or kernel) table-manipulation
// handle Mini-NOVA uses for map/unmap/protect. All descriptor writes go to
// PhysMem so the walker (and therefore the experiments) see exactly what
// the software built.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "mem/phys_mem.hpp"
#include "mmu/descriptors.hpp"
#include "util/types.hpp"

namespace minova::mmu {

/// Pool allocator over a physical window reserved for translation tables.
/// Freed L1/L2 tables recycle LIFO through per-kind free lists; the bump
/// watermark only moves when the lists are empty, so allocation order (and
/// therefore table placement) is unchanged for workloads that never free.
class PageTableAllocator {
 public:
  PageTableAllocator(mem::PhysMem& ram, paddr_t base, u32 size);

  /// Allocate a zeroed, 16 KB-aligned first-level table.
  paddr_t alloc_l1();
  /// Allocate a zeroed, 1 KB-aligned second-level table.
  paddr_t alloc_l2();
  /// Return a table to its pool. Aborts on a pointer not allocated here, a
  /// kind mismatch, or a double free.
  void free_l1(paddr_t pa);
  void free_l2(paddr_t pa);

  /// Pool watermark (never decreases; churn with recycling keeps it flat).
  u32 bytes_used() const { return next_ - base_; }
  u32 bytes_total() const { return size_; }
  /// Bytes held by live (allocated, not freed) tables — the leak oracle.
  u32 bytes_live() const { return bytes_live_; }
  u32 live_tables() const { return live_tables_; }

 private:
  paddr_t alloc(u32 bytes, u32 align, bool is_l1);
  void free_table(paddr_t pa, bool is_l1, u32 bytes);

  struct Table {
    bool is_l1 = false;
    bool live = false;
  };

  mem::PhysMem& ram_;
  paddr_t base_;
  u32 size_;
  paddr_t next_;
  std::map<paddr_t, Table> tables_;
  std::vector<paddr_t> free_l1_;
  std::vector<paddr_t> free_l2_;
  u32 bytes_live_ = 0;
  u32 live_tables_ = 0;
};

struct MapAttrs {
  Ap ap = Ap::kFullAccess;
  u32 domain = 0;
  bool ng = true;    // non-global: tagged with the owning ASID
  bool xn = false;
};

/// Handle over one translation table tree rooted at an L1 table. The space
/// owns its tables: destruction returns the L1 and every materialized L2 to
/// the allocator's pools (the allocator must outlive the space).
class AddressSpace {
 public:
  AddressSpace(mem::PhysMem& ram, PageTableAllocator& alloc);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  paddr_t root() const { return l1_base_; }

  /// Map a 1 MB section. `va` and `pa` must be 1 MB aligned.
  void map_section(vaddr_t va, paddr_t pa, const MapAttrs& attrs);

  /// Map a single 4 KB page, materializing an L2 table if needed. The L2
  /// table inherits `attrs.domain` (domains live in the L1 descriptor).
  void map_page(vaddr_t va, paddr_t pa, const MapAttrs& attrs);

  /// Map a range with 4 KB granularity. `len` rounded up to pages.
  void map_range(vaddr_t va, paddr_t pa, u32 len, const MapAttrs& attrs);

  /// Remove the mapping covering `va` (section or page). Returns true if a
  /// mapping existed.
  bool unmap_page(vaddr_t va);

  /// Change permissions on an existing 4 KB page mapping.
  bool protect_page(vaddr_t va, Ap ap);

  /// Materialize (if needed) the second-level table covering `va` without
  /// mapping anything — the "guest page table creation" hypercall primitive.
  /// Returns false when the megabyte is already covered by a section.
  bool ensure_l2(vaddr_t va, u32 domain);

  /// Read back the translation for `va` without permission checks (test and
  /// debugging aid; also used by the kernel to validate guest arguments).
  std::optional<paddr_t> translate_raw(vaddr_t va) const;

  /// True when the L1 entry covering `va` is present (a section or an L2
  /// table pointer). Lets read-only scanners (fuzzer oracles) skip empty
  /// megabytes without issuing per-page walks.
  bool l1_present(vaddr_t va) const;

  /// Words of descriptor memory this space has touched; the VM-switch and
  /// map hypercall cost models charge cache accesses against these writes.
  u32 descriptor_writes() const { return descriptor_writes_; }

 private:
  u32 read_l1(u32 index) const;
  void write_l1(u32 index, u32 raw);

  mem::PhysMem& ram_;
  PageTableAllocator& alloc_;
  paddr_t l1_base_;
  std::vector<paddr_t> l2_tables_;  // L2s materialized by this space
  mutable u32 descriptor_writes_ = 0;
};

}  // namespace minova::mmu
