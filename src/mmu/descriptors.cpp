#include "mmu/descriptors.hpp"

#include "util/assert.hpp"

namespace minova::mmu {

namespace {
constexpr u32 ap_low(Ap ap) { return u32(ap) & 0b11u; }
constexpr u32 ap_x(Ap ap) { return (u32(ap) >> 2) & 1u; }
constexpr Ap ap_from(u32 low, u32 apx) { return Ap((apx << 2) | low); }
}  // namespace

u32 L1Desc::encode() const {
  switch (type) {
    case L1Type::kFault:
      return 0;
    case L1Type::kPageTable:
      MINOVA_CHECK(is_aligned(l2_base, 1024));
      return (l2_base & 0xFFFF'FC00u) | (domain << 5) | 0b01u;
    case L1Type::kSection: {
      MINOVA_CHECK(is_aligned(section_base, kSectionSize));
      u32 raw = (section_base & 0xFFF0'0000u) | 0b10u;
      raw |= (domain & 0xFu) << 5;
      raw |= ap_low(ap) << 10;
      raw |= ap_x(ap) << 15;
      raw |= (ng ? 1u : 0u) << 17;
      raw |= (xn ? 1u : 0u) << 4;
      return raw;
    }
  }
  MINOVA_UNREACHABLE("bad L1 type");
}

L1Desc L1Desc::decode(u32 raw) {
  L1Desc d;
  switch (raw & 0b11u) {
    case 0b00:
      d.type = L1Type::kFault;
      break;
    case 0b01:
      d.type = L1Type::kPageTable;
      d.l2_base = raw & 0xFFFF'FC00u;
      d.domain = bits(raw, 8, 5);
      break;
    case 0b10:
    case 0b11:  // supersections unsupported; treated as section
      d.type = L1Type::kSection;
      d.section_base = raw & 0xFFF0'0000u;
      d.domain = bits(raw, 8, 5);
      d.ap = ap_from(bits(raw, 11, 10), bit(raw, 15) ? 1 : 0);
      d.ng = bit(raw, 17);
      d.xn = bit(raw, 4);
      break;
  }
  return d;
}

u32 L2Desc::encode() const {
  if (!valid) return 0;
  MINOVA_CHECK(is_aligned(page_base, kPageSize));
  u32 raw = (page_base & 0xFFFF'F000u) | 0b10u;
  raw |= (xn ? 1u : 0u);  // XN is bit 0 for small pages
  raw |= ap_low(ap) << 4;
  raw |= ap_x(ap) << 9;
  raw |= (ng ? 1u : 0u) << 11;
  return raw;
}

L2Desc L2Desc::decode(u32 raw) {
  L2Desc d;
  if ((raw & 0b10u) == 0) return d;  // fault or large page (unsupported)
  d.valid = true;
  d.page_base = raw & 0xFFFF'F000u;
  d.xn = bit(raw, 0);
  d.ap = ap_from(bits(raw, 5, 4), bit(raw, 9) ? 1 : 0);
  d.ng = bit(raw, 11);
  return d;
}

}  // namespace minova::mmu
