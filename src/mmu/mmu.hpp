// The MMU proper: TLB-fronted two-level table walker with DACR and AP
// permission checking, plus the CP15-visible state (TTBR0, DACR,
// CONTEXTIDR/ASID, enable).
//
// Permission evaluation happens on every access against the *current* DACR,
// even on TLB hits — this is the hardware property Mini-NOVA's guest-kernel
// vs guest-user separation exploits (paper Table II): the kernel flips a
// domain between Client and NoAccess on guest privilege changes without
// touching the TLB.
#pragma once

#include "cache/hierarchy.hpp"
#include "cache/tlb.hpp"
#include "mem/phys_mem.hpp"
#include "mmu/descriptors.hpp"
#include "mmu/fault.hpp"
#include "util/types.hpp"

namespace minova::mmu {

enum class AccessKind : u8 { kRead, kWrite, kExecute };

struct TranslateResult {
  paddr_t pa = 0;
  Fault fault;  // fault.type == kNone on success
  cycles_t cost = 0;  // walk cost (0 on TLB hit)
  bool tlb_hit = false;

  bool ok() const { return !fault.is_fault(); }
};

class Mmu {
 public:
  Mmu(mem::PhysMem& table_ram, cache::MemHierarchy& hierarchy,
      cache::Tlb& tlb);

  // ---- CP15-visible state ----
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void set_ttbr0(paddr_t root) { ttbr0_ = root; }
  paddr_t ttbr0() const { return ttbr0_; }
  void set_dacr(u32 dacr) { dacr_ = dacr; }
  u32 dacr() const { return dacr_; }
  void set_asid(u32 asid) { asid_ = asid & 0xFFu; }
  u32 asid() const { return asid_; }

  // ---- TLB maintenance (driven by CP15 c8 operations) ----
  void tlb_flush_all() { tlb_.flush_all(); }
  void tlb_flush_asid(u32 asid) { tlb_.flush_asid(asid); }
  void tlb_flush_va(vaddr_t va) { tlb_.flush_va(va); }

  /// Translate `va` for an access of `kind` at the given privilege.
  /// On success, `cost` covers TLB miss walk descriptor fetches only; the
  /// caller charges the actual data/instruction access separately.
  TranslateResult translate(vaddr_t va, AccessKind kind, bool privileged);

  cache::Tlb& tlb() { return tlb_; }

 private:
  struct WalkOut {
    bool ok = false;
    FaultType fault = FaultType::kNone;
    cache::TlbEntry entry;
  };
  WalkOut walk(vaddr_t va, cycles_t& cost);

  // Attribute summary packed into TlbEntry::attrs.
  static u32 pack_attrs(Ap ap, u32 domain, bool xn);
  static Ap attrs_ap(u32 a) { return Ap(a & 0x7u); }
  static u32 attrs_domain(u32 a) { return (a >> 3) & 0xFu; }
  static bool attrs_xn(u32 a) { return ((a >> 7) & 1u) != 0; }

  mem::PhysMem& ram_;
  cache::MemHierarchy& hierarchy_;
  cache::Tlb& tlb_;

  bool enabled_ = false;
  paddr_t ttbr0_ = 0;
  u32 dacr_ = 0;
  u32 asid_ = 0;
};

}  // namespace minova::mmu
