// The MMU proper: TLB-fronted two-level table walker with DACR and AP
// permission checking, plus the CP15-visible state (TTBR0, DACR,
// CONTEXTIDR/ASID, enable).
//
// Permission evaluation happens on every access against the *current* DACR,
// even on TLB hits — this is the hardware property Mini-NOVA's guest-kernel
// vs guest-user separation exploits (paper Table II): the kernel flips a
// domain between Client and NoAccess on guest privilege changes without
// touching the TLB.
//
// A per-core micro-TLB (direct-mapped, keyed on (asid, va>>12)) sits in
// front of the main TLB, mirroring the A9's L1 micro-TLBs. It is a pure
// host-side accelerator: a micro hit replays the exact bookkeeping a main
// TLB hit would have performed (`Tlb::touch`), so hit/miss sequences, LRU
// order and charged cycles are bit-identical with it in place. Cached
// entry pointers are revalidated against `Tlb::generation()`, which every
// insert and flush bumps; TTBR/ASID writes clear the micro-TLB outright.
#pragma once

#include <array>
#include <vector>

#include "cache/hierarchy.hpp"
#include "cache/tlb.hpp"
#include "mem/phys_mem.hpp"
#include "mmu/descriptors.hpp"
#include "mmu/fault.hpp"
#include "util/types.hpp"

namespace minova::mmu {

enum class AccessKind : u8 { kRead, kWrite, kExecute };

/// Host-side micro-TLB effectiveness (no simulated meaning: a micro hit
/// and a main-TLB hit charge identical cycles).
struct MicroTlbStats {
  u64 hits = 0;
  u64 misses = 0;
  double hit_rate() const {
    const u64 t = hits + misses;
    return t == 0 ? 0.0 : double(hits) / double(t);
  }
};

struct TranslateResult {
  paddr_t pa = 0;
  Fault fault;  // fault.type == kNone on success
  cycles_t cost = 0;  // walk cost (0 on TLB hit)
  bool tlb_hit = false;

  bool ok() const { return !fault.is_fault(); }
};

class Mmu {
 public:
  Mmu(mem::PhysMem& table_ram, cache::MemHierarchy& hierarchy,
      cache::Tlb& tlb);

  // ---- CP15-visible state ----
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void set_ttbr0(paddr_t root) {
    ttbr0_ = root;
    utlb_flush();
  }
  paddr_t ttbr0() const { return ttbr0_; }
  void set_dacr(u32 dacr) { dacr_ = dacr; }
  u32 dacr() const { return dacr_; }
  void set_asid(u32 asid) {
    asid_ = asid & 0xFFu;
    utlb_flush();
  }
  u32 asid() const { return asid_; }

  // ---- TLB maintenance (driven by CP15 c8 operations) ----
  void tlb_flush_all() { tlb_.flush_all(); }
  void tlb_flush_asid(u32 asid) { tlb_.flush_asid(asid); }
  void tlb_flush_va(vaddr_t va) { tlb_.flush_va(va); }

  /// Translate `va` for an access of `kind` at the given privilege.
  /// On success, `cost` covers TLB miss walk descriptor fetches only; the
  /// caller charges the actual data/instruction access separately.
  TranslateResult translate(vaddr_t va, AccessKind kind, bool privileged);

  cache::Tlb& tlb() { return tlb_; }

  // ---- micro-TLB banks (SMP) ----
  // Each simulated core owns one bank, mirroring the A9's per-CPU L1
  // micro-TLBs; the SMP run loop selects the active core's bank before its
  // slice. The default single bank is the unicore layout, bit-identical to
  // the pre-SMP micro-TLB.

  /// Size the bank array (one per simulated core). Existing contents are
  /// dropped; the active bank resets to 0.
  void configure_utlb_banks(u32 n) {
    ubanks_.assign(n == 0 ? 1 : n, {});
    ubank_epoch_.assign(ubanks_.size(), 0);
    active_bank_ = 0;
  }
  u32 utlb_banks() const { return u32(ubanks_.size()); }
  void set_active_utlb_bank(u32 i) { active_bank_ = i % u32(ubanks_.size()); }
  u32 active_utlb_bank() const { return active_bank_; }

  /// Drop every entry of the *active* bank (TTBR/ASID switches do this
  /// implicitly; main-TLB maintenance invalidates via the generation check
  /// instead).
  void utlb_flush() { utlb_flush_bank(active_bank_); }
  void utlb_flush_bank(u32 i) {
    for (auto& u : ubanks_[i % u32(ubanks_.size())]) u.entry = nullptr;
    ++ubank_epoch_[i % u32(ubanks_.size())];
  }
  void utlb_flush_all_banks() {
    for (u32 i = 0; i < u32(ubanks_.size()); ++i) utlb_flush_bank(i);
  }
  /// Flush count of bank `i` (KernelInspector's per-core uTLB generation).
  u64 utlb_bank_epoch(u32 i) const {
    return ubank_epoch_[i % u32(ubank_epoch_.size())];
  }

  /// Restore CP15 translation state without the flush side effects of
  /// set_ttbr0/set_asid. SMP core-interleave only: the incoming core's bank
  /// was built under exactly this (TTBR, ASID) pair, so flushing it would
  /// throw away a still-valid micro-TLB for no architectural reason.
  void restore_context(paddr_t ttbr, u32 dacr, u32 asid) {
    ttbr0_ = ttbr;
    dacr_ = dacr;
    asid_ = asid & 0xFFu;
  }

  const MicroTlbStats& micro_stats() const { return ustats_; }
  void reset_micro_stats() { ustats_ = {}; }

 private:
  struct WalkOut {
    bool ok = false;
    FaultType fault = FaultType::kNone;
    cache::TlbEntry entry;
  };
  WalkOut walk(vaddr_t va, cycles_t& cost);

  // Attribute summary packed into TlbEntry::attrs.
  static u32 pack_attrs(Ap ap, u32 domain, bool xn);
  static Ap attrs_ap(u32 a) { return Ap(a & 0x7u); }
  static u32 attrs_domain(u32 a) { return (a >> 3) & 0xFu; }
  static bool attrs_xn(u32 a) { return ((a >> 7) & 1u) != 0; }

  mem::PhysMem& ram_;
  cache::MemHierarchy& hierarchy_;
  cache::Tlb& tlb_;

  bool enabled_ = false;
  paddr_t ttbr0_ = 0;
  u32 dacr_ = 0;
  u32 asid_ = 0;

  // Micro-TLB: direct-mapped on the low bits of the virtual page. An entry
  // is live while `entry != nullptr`, the (asid, vpage) key matches, and
  // `gen` equals the main TLB's current generation. One bank per simulated
  // core; bank 0 alone reproduces the unicore micro-TLB exactly.
  static constexpr u32 kMicroTlbEntries = 16;  // power of two
  struct MicroEntry {
    const cache::TlbEntry* entry = nullptr;
    vaddr_t vpage = 0;
    u32 asid = 0;
    u64 gen = 0;
  };
  using MicroBank = std::array<MicroEntry, kMicroTlbEntries>;
  std::vector<MicroBank> ubanks_{1};
  std::vector<u64> ubank_epoch_{std::vector<u64>(1, 0)};
  u32 active_bank_ = 0;
  MicroTlbStats ustats_;
};

}  // namespace minova::mmu
