// ARMv7-A short-descriptor translation table formats (VMSAv7).
//
// Mini-NOVA builds real first/second-level tables in simulated DRAM; the
// walker in mmu.cpp decodes these exact bit layouts. Keeping the encoding
// faithful means the per-VM isolation and the PRR-interface 4 KB mapping
// trick (paper §IV.C) are exercised at the descriptor level.
#pragma once

#include "util/types.hpp"

namespace minova::mmu {

// Access permissions, AP[2:0] with the APX bit folded in as AP[2]
// (SCTLR.AFE=0 encoding).
enum class Ap : u8 {
  kNoAccess = 0b000,       // all accesses fault
  kPrivOnly = 0b001,       // PL1 RW, PL0 none
  kPrivRwUserRo = 0b010,   // PL1 RW, PL0 read-only
  kFullAccess = 0b011,     // PL1 RW, PL0 RW
  kPrivRo = 0b101,         // PL1 RO, PL0 none
  kReadOnly = 0b111,       // PL1 RO, PL0 RO
};

/// Evaluate an AP encoding. Returns true when the access is permitted.
constexpr bool ap_permits(Ap ap, bool privileged, bool write) {
  switch (ap) {
    case Ap::kNoAccess: return false;
    case Ap::kPrivOnly: return privileged;
    case Ap::kPrivRwUserRo: return privileged || !write;
    case Ap::kFullAccess: return true;
    case Ap::kPrivRo: return privileged && !write;
    case Ap::kReadOnly: return !write;
  }
  return false;
}

// Domain access control (DACR field values, paper Table II).
enum class DomainMode : u8 {
  kNoAccess = 0b00,  // any access generates a domain fault
  kClient = 0b01,    // accesses checked against AP bits
  kManager = 0b11,   // accesses never checked (check-free)
};

/// 32-bit DACR register helpers: 16 domains x 2 bits.
constexpr u32 dacr_set(u32 dacr, u32 domain, DomainMode mode) {
  const u32 shift = domain * 2;
  return (dacr & ~(0b11u << shift)) | (u32(mode) << shift);
}
constexpr DomainMode dacr_get(u32 dacr, u32 domain) {
  return DomainMode((dacr >> (domain * 2)) & 0b11u);
}

// ---- First-level descriptors (one per 1 MB of VA; 4096-entry table) --------

enum class L1Type : u8 { kFault = 0b00, kPageTable = 0b01, kSection = 0b10 };

struct L1Desc {
  L1Type type = L1Type::kFault;
  // kPageTable
  paddr_t l2_base = 0;  // 1 KB aligned
  // kSection
  paddr_t section_base = 0;  // 1 MB aligned
  Ap ap = Ap::kNoAccess;
  bool ng = false;  // non-global (ASID-tagged)
  bool xn = false;
  u32 domain = 0;

  u32 encode() const;
  static L1Desc decode(u32 raw);
};

// ---- Second-level descriptors (small pages; 256-entry tables) ---------------

struct L2Desc {
  bool valid = false;
  paddr_t page_base = 0;  // 4 KB aligned
  Ap ap = Ap::kNoAccess;
  bool ng = false;
  bool xn = false;

  u32 encode() const;
  static L2Desc decode(u32 raw);
};

inline constexpr u32 kL1Entries = 4096;
inline constexpr u32 kL1TableBytes = kL1Entries * 4;  // 16 KB
inline constexpr u32 kL2Entries = 256;
inline constexpr u32 kL2TableBytes = kL2Entries * 4;  // 1 KB

inline constexpr u32 kSectionSize = 1u * kMiB;
inline constexpr u32 kPageSize = 4u * kKiB;

constexpr u32 l1_index(vaddr_t va) { return va >> 20; }
constexpr u32 l2_index(vaddr_t va) { return (va >> 12) & 0xFFu; }

}  // namespace minova::mmu
