// Cortex-A9 MPCore private timer model.
//
// A 32-bit down-counter clocked at CPU/2 with optional auto-reload; raises
// PPI 29 through the GIC on expiry. Mini-NOVA uses it as the kernel
// scheduling tick (the 33 ms guest time quantum of §V.B) and multiplexes
// per-VM virtual timers on top of it.
#pragma once

#include "irq/gic.hpp"
#include "mem/address_map.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace minova::timer {

class PrivateTimer {
 public:
  PrivateTimer(sim::Clock& clock, sim::EventQueue& events, irq::Gic& gic,
               u32 irq_id = mem::kIrqPrivateTimer);

  /// Program the timer: fires after `load` timer ticks (CPU/2 cycles);
  /// re-arms automatically when `auto_reload` is set.
  void start(u32 load, bool auto_reload);
  void stop();
  bool running() const { return running_; }

  /// Remaining timer ticks until expiry at the current simulated time.
  u32 current_value() const;

  /// Interrupt status bit; the kernel's tick handler clears it.
  bool event_flag() const { return event_flag_; }
  void clear_event_flag() { event_flag_ = false; }

  u64 expirations() const { return expirations_; }

  /// Prescaler: private timer counts at half the CPU clock on the A9.
  static constexpr u32 kClockDivider = 2;

 private:
  void arm();
  void on_expiry();

  sim::Clock& clock_;
  sim::EventQueue& events_;
  irq::Gic& gic_;
  u32 irq_id_;

  bool running_ = false;
  bool auto_reload_ = false;
  u32 load_ = 0;
  cycles_t deadline_ = 0;
  sim::EventQueue::EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  bool event_flag_ = false;
  u64 expirations_ = 0;
};

/// 64-bit global timer: free-running counter at CPU/2, readable by anyone.
/// Used as the time base for latency measurements inside the simulation
/// (the modeled software "reads" it the way the paper's instrumentation
/// read the A9 global timer).
class GlobalTimer {
 public:
  explicit GlobalTimer(const sim::Clock& clock) : clock_(clock) {}
  u64 read() const { return clock_.now() / 2; }
  double read_us() const { return clock_.cycles_to_us(clock_.now()); }

 private:
  const sim::Clock& clock_;
};

}  // namespace minova::timer
