#include "timer/private_timer.hpp"

#include "util/assert.hpp"

namespace minova::timer {

PrivateTimer::PrivateTimer(sim::Clock& clock, sim::EventQueue& events,
                           irq::Gic& gic, u32 irq_id)
    : clock_(clock), events_(events), gic_(gic), irq_id_(irq_id) {}

void PrivateTimer::start(u32 load, bool auto_reload) {
  MINOVA_CHECK_MSG(load > 0, "timer load must be nonzero");
  stop();
  load_ = load;
  auto_reload_ = auto_reload;
  running_ = true;
  arm();
}

void PrivateTimer::stop() {
  if (has_pending_event_) {
    events_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  running_ = false;
}

void PrivateTimer::arm() {
  deadline_ = clock_.now() + cycles_t(load_) * kClockDivider;
  pending_event_ = events_.schedule_at(deadline_, [this] { on_expiry(); });
  has_pending_event_ = true;
}

void PrivateTimer::on_expiry() {
  has_pending_event_ = false;
  event_flag_ = true;
  ++expirations_;
  gic_.raise(irq_id_);
  if (auto_reload_ && running_) {
    arm();
  } else {
    running_ = false;
  }
}

u32 PrivateTimer::current_value() const {
  if (!running_) return 0;
  const cycles_t now = clock_.now();
  if (now >= deadline_) return 0;
  return u32((deadline_ - now) / kClockDivider);
}

}  // namespace minova::timer
