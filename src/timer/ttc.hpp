// Triple Timer Counter (TTC) model — the Zynq PS peripheral guests use for
// their own tick sources when running natively. Under Mini-NOVA the guest's
// timer is replaced by a kernel-provided virtual timer; the native uC/OS-II
// baseline keeps using this device directly, so both execution modes have a
// real tick source.
#pragma once

#include <array>

#include "irq/gic.hpp"
#include "mem/address_map.hpp"
#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace minova::timer {

class Ttc {
 public:
  static constexpr u32 kChannels = 3;

  Ttc(sim::Clock& clock, sim::EventQueue& events, irq::Gic& gic,
      u32 irq_base = mem::kIrqTtc0_0);

  /// Program channel `ch` for interval mode: IRQ every `interval` input
  /// clocks scaled by 2^(prescale+1).
  void start_interval(u32 ch, u32 interval, u32 prescale);
  void stop(u32 ch);
  bool running(u32 ch) const { return chan_[ch].running; }
  u64 expirations(u32 ch) const { return chan_[ch].expirations; }

 private:
  struct Channel {
    bool running = false;
    u32 interval = 0;
    u32 prescale = 0;
    sim::EventQueue::EventId event = 0;
    bool has_event = false;
    u64 expirations = 0;
  };

  void arm(u32 ch);

  sim::Clock& clock_;
  sim::EventQueue& events_;
  irq::Gic& gic_;
  u32 irq_base_;
  std::array<Channel, kChannels> chan_{};
};

}  // namespace minova::timer
