#include "timer/ttc.hpp"

#include "util/assert.hpp"

namespace minova::timer {

Ttc::Ttc(sim::Clock& clock, sim::EventQueue& events, irq::Gic& gic,
         u32 irq_base)
    : clock_(clock), events_(events), gic_(gic), irq_base_(irq_base) {}

void Ttc::start_interval(u32 ch, u32 interval, u32 prescale) {
  MINOVA_CHECK(ch < kChannels);
  MINOVA_CHECK(interval > 0);
  stop(ch);
  Channel& c = chan_[ch];
  c.running = true;
  c.interval = interval;
  c.prescale = prescale;
  arm(ch);
}

void Ttc::stop(u32 ch) {
  MINOVA_CHECK(ch < kChannels);
  Channel& c = chan_[ch];
  if (c.has_event) {
    events_.cancel(c.event);
    c.has_event = false;
  }
  c.running = false;
}

void Ttc::arm(u32 ch) {
  Channel& c = chan_[ch];
  const cycles_t period = cycles_t(c.interval) << (c.prescale + 1);
  c.event = events_.schedule_at(clock_.now() + period, [this, ch] {
    Channel& cc = chan_[ch];
    cc.has_event = false;
    ++cc.expirations;
    gic_.raise(irq_base_ + ch);
    if (cc.running) arm(ch);
  });
  c.has_event = true;
}

}  // namespace minova::timer
