// System-wide invariant oracles over live kernel state.
//
// Each oracle states a global property the paper's isolation story depends
// on, checked against the read-only KernelInspector facade after every trap
// exit and VM switch. Oracles are pure observers: const queries only, zero
// simulated cycles, so running them at any frequency cannot perturb the
// simulation — the property that makes {seed, step} failure reproduction
// bit-identical.
//
// Catalogue (DESIGN.md §11 documents each in detail):
//   kFrameExclusivity  no two PDs map the same private DRAM frame; every
//                      guest-reachable frame lies in the owner's own slab
//   kDacrMode          each PD's saved DACR matches its privilege mode
//                      (Table II), and the live MMU DACR matches current's
//   kIrqMaskDiscipline a descheduled VM's registered physical sources are
//                      masked at the GIC (unless shared with current)
//   kIrqUnmaskDiscipline the current VM's registered sources are unmasked
//                      exactly when virtually enabled
//   kSchedPartition    run + suspend queues partition live PDs, no
//                      duplicates, halted PDs queued nowhere
//   kQuantumBound      every PD's remaining quantum <= the default slice
//   kPortalCaps        portal denial flags match PdCaps-derived authority
//   kPrrOwnership      every client-held PRR: interface page mapped by
//                      exactly the owning VM, PL IRQ routed to it
//   kHwMmuWindow       every client-held PRR's hwMMU window lies inside
//                      the client's hardware-task data section
//   kTlbCoherence      ASIDs are unique per PD and every valid TLB entry
//                      agrees with the owning space's page tables
//   kObjectLeak        kernel-heap accounting matches the live object
//                      population exactly (destroying a VM leaks nothing)
//   kAsidUniqueness    no two live PDs share an (ASID, generation) tag and
//                      no live PD carries the null ASID
//   kCorePartition     queue membership agrees with core affinity: a PD in
//                      core i's run/suspend queues has run_core == i, and a
//                      core's current PD is homed on that core (the manager
//                      is exempt: it executes synchronously on the invoking
//                      core while parked in core 0's suspend queue)
//   kShootdownComplete TLB shootdown completion accounting balances:
//                      sent == Σ acked + in-flight mailbox entries, no ack
//                      epoch runs ahead of the global epoch, and a core with
//                      an empty shootdown mailbox has acked the latest epoch
//   kCoreExclusivity   no PD is current on two simulated cores at once
//   kHwLaunchLedger    the manager's independent launch ledger agrees with
//                      the PRR table and the fabric: no PRR runs a task its
//                      recorded client didn't launch
//   kHwSaveRestore     a client's §IV.C record is kStateInconsistent iff a
//                      preemption save is outstanding, and the saved
//                      registers round-trip exactly through the record
//   kHwQuota           no client's grants (owned regions + queued requests)
//                      exceed its effective hardware-task quota
//   kHwCacheValid      every bitstream-cache entry names a task-table
//                      bitstream and matches its store location
//   kSvContainment     every live supervisor slot is backed by a kernel PD
//                      with a guest attached; every torn-down slot holds no
//                      PdId and sits in a terminal health state
//   kSvRestartLedger   condemnations balance against outcomes: crashes +
//                      watchdog fires == restarts + quarantines + pending
//                      reaps/restarts, and incarnation counts sum to the
//                      restart stat
//   kSvQuarantine      a quarantined slot is torn down for good, and the
//                      quarantine stat equals the quarantined-slot count
//
// The three supervisor oracles are vacuous when the kernel runs without a
// supervisor (the default), so they cost legacy shards nothing.
// The three SMP oracles are vacuous on a unicore kernel (empty mailboxes,
// zero epochs, one current), so enabling them costs unicore shards nothing.
// The four PRR-scheduler oracles are likewise vacuous (or reduce to
// ledger/table agreement) when the scheduler is default-off.
//
// Mapping-level oracles (frames, PRR ownership, hwMMU) are deferred while
// the manager service runs inside a client's hypercall: its tables are
// legitimately mid-update there, and the oracle re-runs at the VM switch
// back to the client.
#pragma once

#include <string>
#include <vector>

#include "nova/inspector.hpp"

namespace minova::hwmgr {
class ManagerService;
}

namespace minova::fuzz {

enum class Oracle : u8 {
  kFrameExclusivity = 0,
  kDacrMode,
  kIrqMaskDiscipline,
  kIrqUnmaskDiscipline,
  kSchedPartition,
  kQuantumBound,
  kPortalCaps,
  kPrrOwnership,
  kHwMmuWindow,
  kTlbCoherence,
  kObjectLeak,
  kAsidUniqueness,
  // SMP oracles (appended so pre-SMP failure digests keep their numbering).
  kCorePartition,
  kShootdownComplete,
  kCoreExclusivity,
  // PRR-scheduler oracles (appended so SMP-era digests keep their numbering).
  kHwLaunchLedger,
  kHwSaveRestore,
  kHwQuota,
  kHwCacheValid,
  // Supervisor oracles (appended so PRR-era digests keep their numbering).
  kSvContainment,
  kSvRestartLedger,
  kSvQuarantine,
  kCount,
};

inline constexpr u32 kNumOracles = u32(Oracle::kCount);

const char* oracle_name(Oracle o);

struct Violation {
  Oracle oracle = Oracle::kCount;
  std::string detail;
};

class InvariantSuite {
 public:
  /// `mgr` may be null (scenarios without the DPR subsystem); the PRR and
  /// hwMMU oracles are then vacuous.
  InvariantSuite(const nova::KernelInspector& insp,
                 const hwmgr::ManagerService* mgr)
      : insp_(insp), mgr_(mgr) {}

  /// Run one oracle, appending violations.
  void check(Oracle o, std::vector<Violation>& out) const;

  /// The cheap tier: every oracle that costs O(PDs + records).
  std::vector<Violation> check_cheap() const;
  /// The scan tier: page-table sweeps and TLB replay (O(pages)).
  std::vector<Violation> check_heavy() const;
  std::vector<Violation> check_all() const;

  /// True for oracles in the scan tier.
  static bool is_heavy(Oracle o);

 private:
  void check_frame_exclusivity(std::vector<Violation>& out) const;
  void check_dacr_mode(std::vector<Violation>& out) const;
  void check_irq_mask(std::vector<Violation>& out) const;
  void check_irq_unmask(std::vector<Violation>& out) const;
  void check_sched_partition(std::vector<Violation>& out) const;
  void check_quantum_bound(std::vector<Violation>& out) const;
  void check_portal_caps(std::vector<Violation>& out) const;
  void check_prr_ownership(std::vector<Violation>& out) const;
  void check_hwmmu_window(std::vector<Violation>& out) const;
  void check_tlb_coherence(std::vector<Violation>& out) const;
  void check_object_leak(std::vector<Violation>& out) const;
  void check_asid_uniqueness(std::vector<Violation>& out) const;
  void check_core_partition(std::vector<Violation>& out) const;
  void check_shootdown_complete(std::vector<Violation>& out) const;
  void check_core_exclusivity(std::vector<Violation>& out) const;
  void check_hw_launch_ledger(std::vector<Violation>& out) const;
  void check_hw_save_restore(std::vector<Violation>& out) const;
  void check_hw_quota(std::vector<Violation>& out) const;
  void check_hw_cache_valid(std::vector<Violation>& out) const;
  void check_sv_containment(std::vector<Violation>& out) const;
  void check_sv_restart_ledger(std::vector<Violation>& out) const;
  void check_sv_quarantine(std::vector<Violation>& out) const;

  const nova::KernelInspector& insp_;
  const hwmgr::ManagerService* mgr_;
};

}  // namespace minova::fuzz
