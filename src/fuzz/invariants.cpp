#include "fuzz/invariants.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "hwmgr/manager.hpp"
#include "mem/address_map.hpp"
#include "nova/kmem.hpp"
#include "pl/prr_controller.hpp"

namespace minova::fuzz {

using nova::kInvalidPd;
using nova::PdId;
using nova::ProtectionDomain;

const char* oracle_name(Oracle o) {
  switch (o) {
    case Oracle::kFrameExclusivity: return "frame-exclusivity";
    case Oracle::kDacrMode: return "dacr-mode";
    case Oracle::kIrqMaskDiscipline: return "irq-mask-discipline";
    case Oracle::kIrqUnmaskDiscipline: return "irq-unmask-discipline";
    case Oracle::kSchedPartition: return "sched-partition";
    case Oracle::kQuantumBound: return "quantum-bound";
    case Oracle::kPortalCaps: return "portal-caps";
    case Oracle::kPrrOwnership: return "prr-ownership";
    case Oracle::kHwMmuWindow: return "hwmmu-window";
    case Oracle::kTlbCoherence: return "tlb-coherence";
    case Oracle::kObjectLeak: return "object-leak";
    case Oracle::kAsidUniqueness: return "asid-uniqueness";
    case Oracle::kCorePartition: return "core-partition";
    case Oracle::kShootdownComplete: return "shootdown-complete";
    case Oracle::kCoreExclusivity: return "core-exclusivity";
    case Oracle::kHwLaunchLedger: return "hw-launch-ledger";
    case Oracle::kHwSaveRestore: return "hw-save-restore";
    case Oracle::kHwQuota: return "hw-quota";
    case Oracle::kHwCacheValid: return "hw-cache-valid";
    case Oracle::kSvContainment: return "sv-containment";
    case Oracle::kSvRestartLedger: return "sv-restart-ledger";
    case Oracle::kSvQuarantine: return "sv-quarantine";
    case Oracle::kCount: break;
  }
  return "?";
}

namespace {

std::string hex(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

void add(std::vector<Violation>& out, Oracle o, std::string detail) {
  out.push_back(Violation{o, std::move(detail)});
}

/// Guest-reachable VA range the mapping scans sweep: guest kernel + user
/// images, the hardware-task data section, and the chaos scratch window —
/// everything below the first guaranteed-unmapped megabyte. The hardware
/// task interface window is scanned separately (16 pages is enough to cover
/// the manager's device windows and any client's register-group page).
constexpr vaddr_t kScanLimit = 0x00D0'0000u;
constexpr u32 kIfaceScanPages = 16;

bool in_range(paddr_t pa, paddr_t base, u64 size) {
  return pa >= base && pa < base + size;
}

}  // namespace

bool InvariantSuite::is_heavy(Oracle o) {
  switch (o) {
    case Oracle::kFrameExclusivity:
    case Oracle::kPrrOwnership:
    case Oracle::kTlbCoherence:
      return true;
    default:
      return false;
  }
}

void InvariantSuite::check(Oracle o, std::vector<Violation>& out) const {
  switch (o) {
    case Oracle::kFrameExclusivity: check_frame_exclusivity(out); break;
    case Oracle::kDacrMode: check_dacr_mode(out); break;
    case Oracle::kIrqMaskDiscipline: check_irq_mask(out); break;
    case Oracle::kIrqUnmaskDiscipline: check_irq_unmask(out); break;
    case Oracle::kSchedPartition: check_sched_partition(out); break;
    case Oracle::kQuantumBound: check_quantum_bound(out); break;
    case Oracle::kPortalCaps: check_portal_caps(out); break;
    case Oracle::kPrrOwnership: check_prr_ownership(out); break;
    case Oracle::kHwMmuWindow: check_hwmmu_window(out); break;
    case Oracle::kTlbCoherence: check_tlb_coherence(out); break;
    case Oracle::kObjectLeak: check_object_leak(out); break;
    case Oracle::kAsidUniqueness: check_asid_uniqueness(out); break;
    case Oracle::kCorePartition: check_core_partition(out); break;
    case Oracle::kShootdownComplete: check_shootdown_complete(out); break;
    case Oracle::kCoreExclusivity: check_core_exclusivity(out); break;
    case Oracle::kHwLaunchLedger: check_hw_launch_ledger(out); break;
    case Oracle::kHwSaveRestore: check_hw_save_restore(out); break;
    case Oracle::kHwQuota: check_hw_quota(out); break;
    case Oracle::kHwCacheValid: check_hw_cache_valid(out); break;
    case Oracle::kSvContainment: check_sv_containment(out); break;
    case Oracle::kSvRestartLedger: check_sv_restart_ledger(out); break;
    case Oracle::kSvQuarantine: check_sv_quarantine(out); break;
    case Oracle::kCount: break;
  }
}

std::vector<Violation> InvariantSuite::check_cheap() const {
  std::vector<Violation> out;
  for (u32 i = 0; i < kNumOracles; ++i)
    if (!is_heavy(Oracle(i))) check(Oracle(i), out);
  return out;
}

std::vector<Violation> InvariantSuite::check_heavy() const {
  std::vector<Violation> out;
  for (u32 i = 0; i < kNumOracles; ++i)
    if (is_heavy(Oracle(i))) check(Oracle(i), out);
  return out;
}

std::vector<Violation> InvariantSuite::check_all() const {
  std::vector<Violation> out = check_cheap();
  for (auto& v : check_heavy()) out.push_back(std::move(v));
  return out;
}

// ---- (1) frame exclusivity --------------------------------------------------
//
// Sweep every PD's guest-reachable VA range and classify each mapped frame:
// a VM may only reach its own physical slab, the manager only its image and
// the bitstream store, and no two PDs may map the same private DRAM frame.
// Deferred while the manager service is mid-update inside a client call.
void InvariantSuite::check_frame_exclusivity(std::vector<Violation>& out) const {
  if (insp_.in_manager_service()) return;
  const ProtectionDomain* manager = insp_.manager();
  // First mapper of each private DRAM frame (page number -> pd index).
  std::map<paddr_t, u32> frame_owner;

  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr) continue;         // destroyed VM left an empty slot
    if (!pd->has_space()) continue;      // lazy VM: nothing mapped yet
    const bool is_mgr = pd == manager;
    const auto& space = pd->space();
    for (vaddr_t va = 0; va < kScanLimit; va += mmu::kPageSize) {
      if ((va & (kMiB - 1)) == 0 && !space.l1_present(va)) {
        va += kMiB - mmu::kPageSize;  // skip the unmapped megabyte
        continue;
      }
      const auto pa = space.translate_raw(va);
      if (!pa) continue;
      const bool ok =
          is_mgr ? (in_range(*pa, nova::kManagerBase, nova::kManagerSize) ||
                    in_range(*pa, nova::kBitstreamBase, nova::kBitstreamSize))
                 : in_range(*pa, nova::vm_phys_base(pd->vm_index),
                            nova::kVmPhysSize);
      if (!ok) {
        add(out, Oracle::kFrameExclusivity,
            "pd '" + pd->name() + "' maps foreign frame pa=" + hex(*pa) +
                " at va=" + hex(va));
        continue;
      }
      if (is_mgr) continue;  // the manager's regions are exclusively its own
      const paddr_t page = *pa >> 12;
      const auto [it, inserted] = frame_owner.emplace(page, i);
      if (!inserted && it->second != i)
        add(out, Oracle::kFrameExclusivity,
            "frame pa=" + hex(*pa) + " mapped by both '" +
                insp_.pd(it->second)->name() + "' and '" + pd->name() +
                "' (va=" + hex(va) + ")");
    }
  }
}

// ---- (2) DACR matches privilege mode (paper Table II) -----------------------
void InvariantSuite::check_dacr_mode(std::vector<Violation>& out) const {
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr) continue;
    const u32 want =
        pd->guest_in_kernel ? nova::dacr_guest_kernel() : nova::dacr_guest_user();
    if (pd->vcpu().dacr() != want)
      add(out, Oracle::kDacrMode,
          "pd '" + pd->name() + "' " +
              (pd->guest_in_kernel ? "in guest-kernel" : "in guest-user") +
              " but saved dacr=" + hex(pd->vcpu().dacr()) + " (want " +
              hex(want) + ")");
  }
  // The live MMU must carry the current PD's DACR (the hypercall gate runs
  // on the host DACR but restores the caller's before the trap-exit event).
  const ProtectionDomain* cur = insp_.current();
  if (cur != nullptr) {
    const u32 live = insp_.platform().cpu().mmu().dacr();
    if (live != cur->vcpu().dacr())
      add(out, Oracle::kDacrMode,
          "live mmu dacr=" + hex(live) + " != current '" + cur->name() +
              "' dacr=" + hex(cur->vcpu().dacr()));
  }
}

// ---- (3) outgoing VMs' IRQ sources are masked -------------------------------
//
// Every physical source registered by a descheduled PD must be disabled at
// the GIC — unless the *current* PD also has it registered and virtually
// enabled (a legitimately shared source, e.g. after a PL IRQ reassignment
// leaves the old client's record stale), or it is the devcfg/PCAP IRQ,
// which stays boot-enabled so transfer completions arrive while the PCAP
// owner is descheduled (completion routing, paper §IV.E stage 6).
void InvariantSuite::check_irq_mask(std::vector<Violation>& out) const {
  // "Descheduled" under SMP means current on *no* core: a VM on-CPU on any
  // core legitimately keeps its enabled sources unmasked at the shared GIC.
  std::vector<const ProtectionDomain*> on_cpu;
  for (u32 c = 0; c < insp_.num_cores(); ++c)
    if (const ProtectionDomain* cv = insp_.core(c).current_vm())
      on_cpu.push_back(cv);
  auto& gic = insp_.platform().gic();
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr) continue;
    if (std::find(on_cpu.begin(), on_cpu.end(), pd) != on_cpu.end()) continue;
    for (const auto& rec : pd->vgic().records()) {
      if (rec.irq == 0 || rec.irq >= mem::kNumIrqs) continue;  // virtual-only
      if (rec.irq == mem::kIrqDevcfg) continue;
      if (!gic.is_enabled(rec.irq)) continue;
      bool shared_with_current = false;
      for (const ProtectionDomain* cur : on_cpu)
        if (cur->vgic().is_registered(rec.irq) &&
            cur->vgic().is_enabled(rec.irq)) {
          shared_with_current = true;
          break;
        }
      if (!shared_with_current)
        add(out, Oracle::kIrqMaskDiscipline,
            "irq " + std::to_string(rec.irq) + " of descheduled pd '" +
                pd->name() + "' is unmasked at the GIC");
    }
  }
}

// ---- (4) current VM's enabled sources are unmasked --------------------------
void InvariantSuite::check_irq_unmask(std::vector<Violation>& out) const {
  const ProtectionDomain* cur = insp_.current();
  if (cur == nullptr) return;
  auto& gic = insp_.platform().gic();
  for (const auto& rec : cur->vgic().records()) {
    if (rec.irq == 0 || rec.irq >= mem::kNumIrqs) continue;
    if (rec.irq == mem::kIrqDevcfg) continue;  // boot-enabled, shared routing
    if (rec.enabled == gic.is_enabled(rec.irq)) continue;
    if (!rec.enabled) {
      // Under SMP the GIC enable bit is the OR over all on-CPU VMs' wishes:
      // a source this VM disabled legitimately stays unmasked while a
      // sibling core's current VM holds it registered and enabled (per-IRQ
      // targeting routes it to that core, not here).
      bool shared_enabled = false;
      for (u32 c = 0; c < insp_.num_cores() && !shared_enabled; ++c) {
        const ProtectionDomain* oc = insp_.core(c).current_vm();
        if (oc == nullptr || oc == cur) continue;
        shared_enabled =
            oc->vgic().is_registered(rec.irq) && oc->vgic().is_enabled(rec.irq);
      }
      if (shared_enabled) continue;
    }
    add(out, Oracle::kIrqUnmaskDiscipline,
        "current pd '" + cur->name() + "' irq " + std::to_string(rec.irq) +
            (rec.enabled ? " virtually enabled but masked at the GIC"
                         : " virtually disabled but unmasked at the GIC"));
  }
}

// ---- (5) scheduler queues partition live PDs --------------------------------
void InvariantSuite::check_sched_partition(std::vector<Violation>& out) const {
  // Under SMP the partition property is global: every live non-halted PD
  // appears exactly once across the union of *all* cores' run + suspend
  // queues. Work stealing and migration move PDs between queues but must
  // never duplicate or drop one.
  std::map<const ProtectionDomain*, u32> seen;  // pd -> queue appearances
  for (u32 c = 0; c < insp_.num_cores(); ++c) {
    const auto& sched = insp_.core(c).runqueue();
    for (u32 prio = 0; prio < nova::Scheduler::kNumPriorities; ++prio)
      for (const ProtectionDomain* pd : sched.level_queue(prio)) {
        ++seen[pd];
        if (pd->priority() != prio)
          add(out, Oracle::kSchedPartition,
              "pd '" + pd->name() + "' (prio " +
                  std::to_string(pd->priority()) + ") queued at level " +
                  std::to_string(prio) + " on core " + std::to_string(c));
      }
    for (const ProtectionDomain* pd : sched.suspended_queue()) ++seen[pd];
  }

  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr) continue;
    const u32 n = seen.count(pd) ? seen[pd] : 0;
    if (pd->state() == nova::PdState::kHalted) {
      if (n != 0)
        add(out, Oracle::kSchedPartition,
            "halted pd '" + pd->name() + "' still queued");
    } else if (n != 1) {
      add(out, Oracle::kSchedPartition,
          "pd '" + pd->name() + "' appears " + std::to_string(n) +
              " times across run+suspend queues (want 1)");
    }
  }
}

// ---- (6) remaining quantum never exceeds the default slice ------------------
void InvariantSuite::check_quantum_bound(std::vector<Violation>& out) const {
  const cycles_t def = insp_.scheduler().default_quantum();
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr) continue;
    if (pd->quantum_left > def)
      add(out, Oracle::kQuantumBound,
          "pd '" + pd->name() + "' quantum_left=" +
              std::to_string(pd->quantum_left) + " > default=" +
              std::to_string(def));
  }
}

// ---- (7) portal denial flags match capabilities -----------------------------
void InvariantSuite::check_portal_caps(std::vector<Violation>& out) const {
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr) continue;
    for (u32 n = 0; n < nova::kNumHypercalls; ++n) {
      const u32 need = nova::portal_required_caps(nova::Hypercall(n));
      const bool should_deny = (pd->caps() & need) != need;
      if (pd->portals().at(n).denied() != should_deny)
        add(out, Oracle::kPortalCaps,
            "pd '" + pd->name() + "' portal " + std::to_string(n) +
                (should_deny ? " not denied despite missing caps (need "
                             : " denied despite holding caps (need ") +
                hex(need) + ", has " + hex(pd->caps()) + ")");
    }
  }
}

// ---- (8) PRR interface pages belong to exactly the client -------------------
void InvariantSuite::check_prr_ownership(std::vector<Violation>& out) const {
  if (mgr_ == nullptr || insp_.in_manager_service() || mgr_->in_service()) return;
  const ProtectionDomain* manager = insp_.manager();
  auto& ctl = insp_.platform().prr_controller();

  // Per-entry checks: the client's interface VA resolves to this PRR's
  // register-group page and the allocated PL IRQ routes to the client.
  for (u32 idx = 0; idx < mgr_->num_prrs(); ++idx) {
    const auto& e = mgr_->prr_entry(idx);
    if (e.client == kInvalidPd) continue;  // released regions may keep state
    const ProtectionDomain* client = nullptr;
    for (u32 i = 0; i < insp_.pd_count(); ++i)
      if (insp_.pd(i) != nullptr && insp_.pd(i)->id() == e.client)
        client = insp_.pd(i);
    if (client == nullptr || client == manager) {
      add(out, Oracle::kPrrOwnership,
          "prr " + std::to_string(idx) + " client id " +
              std::to_string(e.client) + " is not a VM");
      continue;
    }
    if (e.irq_index != 0xFFFF'FFFFu) {
      const u32 gic_irq = pl::PrrController::gic_irq_for(e.irq_index);
      if (insp_.irq_owner(gic_irq) != e.client)
        add(out, Oracle::kPrrOwnership,
            "prr " + std::to_string(idx) + " PL irq " +
                std::to_string(gic_irq) + " routed to pd id " +
                std::to_string(insp_.irq_owner(gic_irq)) + ", not client " +
                std::to_string(e.client));
    }
  }

  // Live-binding checks: for every (client, VA) -> PRR binding the manager
  // holds, the client's VA must resolve to exactly that PRR's register-group
  // page, and the PRR table must agree on who owns the region. (The per-PRR
  // table may keep stale client/VA records for warm released regions, so the
  // forward mapping check anchors here, not on the table.)
  for (const auto& [key, idx] : mgr_->iface_bindings()) {
    const auto [client_id, va] = key;
    const ProtectionDomain* client = nullptr;
    for (u32 i = 0; i < insp_.pd_count(); ++i)
      if (insp_.pd(i) != nullptr && insp_.pd(i)->id() == client_id)
        client = insp_.pd(i);
    if (client == nullptr || client == manager) {
      add(out, Oracle::kPrrOwnership,
          "iface binding for pd id " + std::to_string(client_id) +
              " which is not a VM");
      continue;
    }
    if (idx >= mgr_->num_prrs() || mgr_->prr_entry(idx).client != client_id) {
      add(out, Oracle::kPrrOwnership,
          "iface binding '" + client->name() + "' va=" + hex(va) + " -> prr " +
              std::to_string(idx) + " but table says client id " +
              std::to_string(idx < mgr_->num_prrs()
                                 ? u64(mgr_->prr_entry(idx).client)
                                 : u64(kInvalidPd)));
      continue;
    }
    if (!client->has_space()) {
      add(out, Oracle::kPrrOwnership,
          "iface binding '" + client->name() + "' va=" + hex(va) +
              " but client has no address space");
      continue;
    }
    const auto pa = client->space().translate_raw(va);
    if (!pa || (*pa >> 12) != (ctl.reg_group_pa(idx) >> 12))
      add(out, Oracle::kPrrOwnership,
          "iface binding '" + client->name() + "' va=" + hex(va) +
              (pa ? " maps " + hex(*pa) : " unmapped") + " (want " +
              hex(ctl.reg_group_pa(idx)) + ")");
  }

  // Global scan: no PD may map a register-group page it does not own, and
  // the global-control/PCAP device pages are manager-only.
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr || !pd->has_space()) continue;
    for (u32 p = 0; p < kIfaceScanPages; ++p) {
      const vaddr_t va = nova::kGuestHwIfaceVa + p * mmu::kPageSize;
      const auto pa = pd->space().translate_raw(va);
      if (!pa) continue;
      if (in_range(*pa, mem::kPrrCtrlBase,
                   mem::kPrrMaxRegions * mem::kPrrRegGroupStride)) {
        const u32 idx = u32((*pa - mem::kPrrCtrlBase) / mem::kPrrRegGroupStride);
        if (idx >= mgr_->num_prrs() || mgr_->prr_entry(idx).client != pd->id())
          add(out, Oracle::kPrrOwnership,
              "pd '" + pd->name() + "' maps register group of prr " +
                  std::to_string(idx) + " it does not own (va=" + hex(va) +
                  ")");
      } else if ((in_range(*pa, mem::kPrrGlobalRegsBase, mmu::kPageSize) ||
                  in_range(*pa, mem::kDevcfgBase, mem::kDevcfgSize)) &&
                 pd != manager) {
        add(out, Oracle::kPrrOwnership,
            "pd '" + pd->name() + "' maps manager-only device page pa=" +
                hex(*pa));
      }
    }
  }
}

// ---- (9) hwMMU windows stay inside the client's data section ----------------
void InvariantSuite::check_hwmmu_window(std::vector<Violation>& out) const {
  if (mgr_ == nullptr || insp_.in_manager_service() || mgr_->in_service()) return;
  auto& ctl = insp_.platform().prr_controller();
  for (u32 idx = 0; idx < mgr_->num_prrs() && idx < ctl.num_prrs(); ++idx) {
    const auto& e = mgr_->prr_entry(idx);
    if (e.client == kInvalidPd) continue;  // release zeroes lazily
    const ProtectionDomain* client = nullptr;
    for (u32 i = 0; i < insp_.pd_count(); ++i)
      if (insp_.pd(i) != nullptr && insp_.pd(i)->id() == e.client)
        client = insp_.pd(i);
    if (client == nullptr) continue;  // reported by the ownership oracle
    const auto& p = ctl.prr(idx);
    if (p.hwmmu_size == 0) continue;
    if (p.hwmmu_base < client->hw_data_pa ||
        paddr_t(p.hwmmu_base) + p.hwmmu_size >
            paddr_t(client->hw_data_pa) + client->hw_data_size)
      add(out, Oracle::kHwMmuWindow,
          "prr " + std::to_string(idx) + " hwMMU window [" + hex(p.hwmmu_base) +
              ", +" + hex(p.hwmmu_size) + ") outside client '" +
              client->name() + "' data section [" + hex(client->hw_data_pa) +
              ", +" + hex(client->hw_data_size) + ")");
  }
}

// ---- (10) TLB contents agree with the page tables ---------------------------
void InvariantSuite::check_tlb_coherence(std::vector<Violation>& out) const {
  // asid -> PD must be a function for the replay below. Only PDs holding a
  // *current-generation* tag can own TLB entries: the rollover path flushes
  // the whole TLB, and stale-generation PDs are retagged before they run
  // again (ensure_asid_current), so their old numeric ASID may legitimately
  // be reissued to another PD meanwhile. (Full (asid, generation) uniqueness
  // across all live PDs is the kAsidUniqueness oracle.)
  const u32 gen = insp_.asid_generation();
  std::map<u32, const ProtectionDomain*> by_asid;
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr || pd->vcpu().asid_gen() != gen) continue;
    const auto [it, inserted] = by_asid.emplace(pd->vcpu().asid(), pd);
    if (!inserted)
      add(out, Oracle::kTlbCoherence,
          "asid " + std::to_string(pd->vcpu().asid()) + " shared by '" +
              it->second->name() + "' and '" + pd->name() + "'");
  }

  const auto* kspace = insp_.kernel_space();
  for (const auto& e : insp_.platform().cpu().tlb().entry_array()) {
    if (!e.valid) continue;
    const mmu::AddressSpace* space = nullptr;
    std::string owner;
    if (e.global) {
      space = kspace;  // global mappings are identical in every space
      owner = "kernel";
    } else {
      const auto it = by_asid.find(e.asid);
      if (it == by_asid.end()) {
        add(out, Oracle::kTlbCoherence,
            "tlb entry vpage=" + hex(e.vpage) + " carries unknown asid " +
                std::to_string(e.asid));
        continue;
      }
      if (!it->second->has_space()) {
        add(out, Oracle::kTlbCoherence,
            "tlb entry vpage=" + hex(e.vpage) + " carries asid of lazy pd '" +
                it->second->name() + "' which has no address space");
        continue;
      }
      space = &it->second->space();
      owner = it->second->name();
    }
    if (space == nullptr) continue;
    // For a section entry, vpage/ppage hold the section base's 4K pages.
    const vaddr_t va = e.vpage << 12;
    const auto pa = space->translate_raw(va);
    if (!pa || (*pa >> 12) != e.ppage)
      add(out, Oracle::kTlbCoherence,
          "tlb entry (" + owner + ") va=" + hex(va) + " caches ppage=" +
              hex(e.ppage) + " but tables say " +
              (pa ? hex(*pa >> 12) : std::string("unmapped")));
  }
}

// ---- (11) kernel-heap accounting matches the live object population ---------
//
// Every heap object is owned by a live kernel object: one vCPU save area per
// PD, one vGIC record list per PD that has materialized it, one ring buffer
// per IVC channel, one control block per PD. Any destroy path that forgets a
// free — or frees twice without the heap noticing — breaks the equality.
// This is the churn-leak oracle: create/destroy storms must hold it at every
// trap exit.
void InvariantSuite::check_object_leak(std::vector<Violation>& out) const {
  const nova::KernelHeap& heap = insp_.heap();
  u64 want_blocks = insp_.channel_count();  // one ring buffer per channel
  u64 want_ctrl = 0;
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr) continue;
    want_blocks += 1;  // vCPU save area
    if (pd->vgic().has_area()) ++want_blocks;
    ++want_ctrl;  // PD descriptor control block
  }
  if (heap.live_blocks() != want_blocks)
    add(out, Oracle::kObjectLeak,
        "heap holds " + std::to_string(heap.live_blocks()) +
            " live blocks but live objects account for " +
            std::to_string(want_blocks));
  if (heap.ctrl_live() != want_ctrl)
    add(out, Oracle::kObjectLeak,
        "heap control region holds " + std::to_string(heap.ctrl_live()) +
            " live blocks but " + std::to_string(want_ctrl) +
            " PDs are alive");
}

// ---- (12) live (ASID, generation) tags are unique and non-null --------------
void InvariantSuite::check_asid_uniqueness(std::vector<Violation>& out) const {
  std::map<std::pair<u32, u32>, const ProtectionDomain*> seen;
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr) continue;
    const u32 asid = pd->vcpu().asid();
    const u32 gen = pd->vcpu().asid_gen();
    if (asid == 0 || asid > 255) {
      add(out, Oracle::kAsidUniqueness,
          "live pd '" + pd->name() + "' carries invalid asid " +
              std::to_string(asid));
      continue;
    }
    const auto [it, inserted] = seen.emplace(std::make_pair(asid, gen), pd);
    if (!inserted)
      add(out, Oracle::kAsidUniqueness,
          "(asid " + std::to_string(asid) + ", gen " + std::to_string(gen) +
              ") shared by live pds '" + it->second->name() + "' and '" +
              pd->name() + "'");
  }
}

// ---- (13) queue membership agrees with core affinity ------------------------
//
// Work stealing and migration are the only paths that move a PD between
// cores, and both update run_core under the same "lock" (the take/enqueue
// pair). A PD sitting in core i's queues with run_core != i means one of
// those paths half-completed — the SMP analogue of a lost queue lock.
void InvariantSuite::check_core_partition(std::vector<Violation>& out) const {
  const ProtectionDomain* manager = insp_.manager();
  for (u32 c = 0; c < insp_.num_cores(); ++c) {
    const auto cv = insp_.core(c);
    const auto& sched = cv.runqueue();
    for (u32 prio = 0; prio < nova::Scheduler::kNumPriorities; ++prio)
      for (const ProtectionDomain* pd : sched.level_queue(prio))
        if (pd->run_core != c)
          add(out, Oracle::kCorePartition,
              "pd '" + pd->name() + "' (run_core " +
                  std::to_string(pd->run_core) + ") queued on core " +
                  std::to_string(c));
    for (const ProtectionDomain* pd : sched.suspended_queue())
      if (pd->run_core != c)
        add(out, Oracle::kCorePartition,
            "pd '" + pd->name() + "' (run_core " +
                std::to_string(pd->run_core) + ") suspended on core " +
                std::to_string(c));
    // The manager executes synchronously on whichever core invoked it while
    // parked in core 0's suspend queue, so it is exempt from the current
    // check (its queue residency is still covered above).
    const ProtectionDomain* cur = cv.current_vm();
    if (cur != nullptr && cur != manager && cur->run_core != c)
      add(out, Oracle::kCorePartition,
          "pd '" + cur->name() + "' (run_core " +
              std::to_string(cur->run_core) + ") is current on core " +
              std::to_string(c));
  }
}

// ---- (14) shootdown completion accounting balances --------------------------
//
// Every kIpiTlbShootdown the initiator sends is eventually acked by exactly
// one drain on the target, and acks never run ahead of the global epoch.
// A core whose mailbox holds no shootdown IPIs has processed everything
// sent to it, so its ack epoch must equal the latest epoch (every epoch
// bump broadcasts to every other core; the initiator self-acks at send).
void InvariantSuite::check_shootdown_complete(std::vector<Violation>& out) const {
  const u64 epoch = insp_.tlb_epoch();
  u64 acked = 0;
  u64 in_flight = 0;
  for (u32 c = 0; c < insp_.num_cores(); ++c) {
    const auto cv = insp_.core(c);
    acked += cv.shootdowns_acked();
    in_flight += cv.pending_shootdowns();
    if (cv.shootdown_ack_epoch() > epoch)
      add(out, Oracle::kShootdownComplete,
          "core " + std::to_string(c) + " ack epoch " +
              std::to_string(cv.shootdown_ack_epoch()) +
              " ahead of global epoch " + std::to_string(epoch));
    if (insp_.num_cores() > 1 && cv.pending_shootdowns() == 0 &&
        cv.shootdown_ack_epoch() != epoch)
      add(out, Oracle::kShootdownComplete,
          "core " + std::to_string(c) + " idle mailbox but ack epoch " +
              std::to_string(cv.shootdown_ack_epoch()) + " != global " +
              std::to_string(epoch));
  }
  if (insp_.shootdowns_sent() != acked + in_flight)
    add(out, Oracle::kShootdownComplete,
        "sent " + std::to_string(insp_.shootdowns_sent()) + " != acked " +
            std::to_string(acked) + " + in-flight " +
            std::to_string(in_flight));
}

// ---- (15) no PD is current on two cores at once -----------------------------
//
// The single hardware context (register file, live MMU state) is swapped
// between per-core saved contexts; a PD current on two cores would mean two
// cores replay the same vCPU — guest state divergence on the next save.
void InvariantSuite::check_core_exclusivity(std::vector<Violation>& out) const {
  std::map<const ProtectionDomain*, u32> first_core;
  for (u32 c = 0; c < insp_.num_cores(); ++c) {
    const ProtectionDomain* cur = insp_.core(c).current_vm();
    if (cur == nullptr) continue;
    const auto [it, inserted] = first_core.emplace(cur, c);
    if (!inserted)
      add(out, Oracle::kCoreExclusivity,
          "pd '" + cur->name() + "' is current on both core " +
              std::to_string(it->second) + " and core " + std::to_string(c));
  }
}

// ---- (16) launch ledger agrees with the PRR table and the fabric ------------
//
// The manager records every grant/regrant in a ledger independent of the PRR
// table; an entry that disagrees means some path updated one bookkeeping
// structure but not the other — the precursor to a region running a task its
// recorded client never launched. Deferred while the manager service is
// mid-update (like the other manager-state oracles).
void InvariantSuite::check_hw_launch_ledger(std::vector<Violation>& out) const {
  if (mgr_ == nullptr || insp_.in_manager_service() || mgr_->in_service()) return;
  const auto& ledger = mgr_->launch_ledger();
  auto& ctl = insp_.platform().prr_controller();
  for (u32 idx = 0; idx < mgr_->num_prrs() && idx < u32(ledger.size()); ++idx) {
    const auto& e = mgr_->prr_entry(idx);
    const auto& l = ledger[idx];
    if (e.client == kInvalidPd) {
      if (l.client != kInvalidPd)
        add(out, Oracle::kHwLaunchLedger,
            "prr " + std::to_string(idx) + " unowned but ledger records "
                "client id " + std::to_string(l.client));
      continue;
    }
    if (l.client != e.client || l.task != e.task) {
      add(out, Oracle::kHwLaunchLedger,
          "prr " + std::to_string(idx) + " table says client " +
              std::to_string(e.client) + " task " + std::to_string(e.task) +
              " but ledger says client " + std::to_string(l.client) +
              " task " + std::to_string(l.task));
      continue;
    }
    // Fabric agreement: an owned, settled region runs exactly the task the
    // ledger's client launched (dark regions — failed downloads — are fine;
    // so is the backoff window between a failed transfer and its retry,
    // where the old task is still resident).
    const auto& hw = ctl.prr(idx);
    if (!e.reconfiguring && !hw.reconfiguring &&
        !mgr_->reconfig_undecided(l.client, idx) &&
        hw.loaded_task != hwtask::kInvalidTask && hw.loaded_task != l.task)
      add(out, Oracle::kHwLaunchLedger,
          "prr " + std::to_string(idx) + " runs task " +
              std::to_string(hw.loaded_task) + " but ledger client " +
              std::to_string(l.client) + " launched task " +
              std::to_string(l.task) + " (table task " +
              std::to_string(e.task) + ")");
  }
}

// ---- (17) preemption saves round-trip through the §IV.C record --------------
//
// Direction 1 (unconditional): every outstanding save of a live client must
// be mirrored exactly in the client's data-section record — inconsistent
// flag, task id, and all eight register words. Direction 2 (priorities on
// only — legacy reclaim writes inconsistent records with no save): a live
// client whose record says inconsistent must have a save outstanding.
void InvariantSuite::check_hw_save_restore(std::vector<Violation>& out) const {
  if (mgr_ == nullptr || insp_.in_manager_service() || mgr_->in_service()) return;
  auto find_pd = [&](PdId id) -> const ProtectionDomain* {
    for (u32 i = 0; i < insp_.pd_count(); ++i)
      if (insp_.pd(i) != nullptr && insp_.pd(i)->id() == id)
        return insp_.pd(i);
    return nullptr;
  };
  auto& dram = insp_.platform().dram();

  for (const auto& [client, saved] : mgr_->saved_contexts()) {
    const ProtectionDomain* pd = find_pd(client);
    if (pd == nullptr) {
      add(out, Oracle::kHwSaveRestore,
          "outstanding save for dead client id " + std::to_string(client));
      continue;
    }
    const paddr_t rec =
        pd->hw_data_pa + hwmgr::consistency_offset(pd->hw_data_size);
    const u32 state = dram.read32(rec);
    const u32 task = dram.read32(rec + 4);
    if (state != hwmgr::kStateInconsistent || task != saved.task) {
      add(out, Oracle::kHwSaveRestore,
          "save outstanding for '" + pd->name() + "' (task " +
              std::to_string(saved.task) + ") but record says state=" +
              std::to_string(state) + " task=" + std::to_string(task));
      continue;
    }
    for (u32 w = 0; w < 8; ++w) {
      const u32 v = dram.read32(rec + 8 + w * 4);
      if (v != saved.regs[w]) {
        add(out, Oracle::kHwSaveRestore,
            "saved reg[" + std::to_string(w) + "] of '" + pd->name() +
                "' is " + hex(saved.regs[w]) + " but record holds " + hex(v));
        break;
      }
    }
  }

  if (!mgr_->sched_config().priorities) return;
  const ProtectionDomain* manager = insp_.manager();
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr || pd == manager || pd->hw_data_size == 0) continue;
    const paddr_t rec =
        pd->hw_data_pa + hwmgr::consistency_offset(pd->hw_data_size);
    if (dram.read32(rec) == hwmgr::kStateInconsistent &&
        mgr_->saved_contexts().count(pd->id()) == 0)
      add(out, Oracle::kHwSaveRestore,
          "record of '" + pd->name() +
              "' says inconsistent but no preemption save is outstanding");
  }
}

// ---- (18) per-VM grants never exceed the quota ------------------------------
void InvariantSuite::check_hw_quota(std::vector<Violation>& out) const {
  if (mgr_ == nullptr || insp_.in_manager_service() || mgr_->in_service()) return;
  const ProtectionDomain* manager = insp_.manager();
  for (u32 i = 0; i < insp_.pd_count(); ++i) {
    const ProtectionDomain* pd = insp_.pd(i);
    if (pd == nullptr || pd == manager) continue;
    const u32 quota = mgr_->effective_quota(pd->id());
    if (quota == 0) continue;  // unlimited
    const u32 in_use = mgr_->grants_in_use(pd->id());
    if (in_use > quota)
      add(out, Oracle::kHwQuota,
          "'" + pd->name() + "' consumes " + std::to_string(in_use) +
              " grants against a quota of " + std::to_string(quota));
  }
}

// ---- (19) cache entries always name a task-table bitstream ------------------
void InvariantSuite::check_hw_cache_valid(std::vector<Violation>& out) const {
  if (mgr_ == nullptr || insp_.in_manager_service() || mgr_->in_service()) return;
  const auto& cache = mgr_->bitstream_cache();
  const u32 cap = mgr_->sched_config().cache_capacity;
  if (cache.size() > cap)
    add(out, Oracle::kHwCacheValid,
        "cache holds " + std::to_string(cache.size()) +
            " entries over capacity " + std::to_string(cap));
  const auto& lib = insp_.platform().task_library();
  for (const auto& e : cache) {
    if (lib.find(e.task) == nullptr) {
      add(out, Oracle::kHwCacheValid,
          "cache entry for task " + std::to_string(e.task) +
              " which the task table does not know");
      continue;
    }
    if (e.len == 0 || !in_range(e.pa, nova::kBitstreamBase,
                                nova::kBitstreamSize) ||
        !in_range(e.pa + e.len - 1, nova::kBitstreamBase, nova::kBitstreamSize))
      add(out, Oracle::kHwCacheValid,
          "cache entry for task " + std::to_string(e.task) +
              " names image [" + hex(e.pa) + ", +" + std::to_string(e.len) +
              ") outside the bitstream store");
  }
}

// ---- (20) supervisor slots agree with the kernel's PD population ------------
//
// A live slot is backed by exactly one kernel PD (with a guest attached) and
// sits in a running health state; a torn-down slot holds no PdId and is in a
// terminal state. A mismatch means a reap or restart half-completed — the
// supervisor believes in a VM the kernel no longer has, or vice versa.
void InvariantSuite::check_sv_containment(std::vector<Violation>& out) const {
  const nova::Supervisor* sup = insp_.supervisor();
  if (sup == nullptr) return;
  auto find_pd = [&](PdId id) -> const ProtectionDomain* {
    for (u32 i = 0; i < insp_.pd_count(); ++i)
      if (insp_.pd(i) != nullptr && insp_.pd(i)->id() == id)
        return insp_.pd(i);
    return nullptr;
  };
  for (u32 s = 0; s < sup->slot_count(); ++s) {
    const auto& r = sup->record(s);
    if (r.live) {
      const ProtectionDomain* pd = find_pd(r.pd);
      if (pd == nullptr) {
        add(out, Oracle::kSvContainment,
            "live slot " + std::to_string(s) + " names pd id " +
                std::to_string(r.pd) + " which the kernel does not have");
        continue;
      }
      if (pd->guest() == nullptr)
        add(out, Oracle::kSvContainment,
            "live slot " + std::to_string(s) + " pd '" + pd->name() +
                "' has no guest attached");
      if (r.health != nova::VmHealth::kHealthy &&
          r.health != nova::VmHealth::kDegraded)
        add(out, Oracle::kSvContainment,
            "live slot " + std::to_string(s) + " in terminal health state '" +
                nova::vm_health_name(r.health) + "'");
    } else {
      if (r.pd != kInvalidPd)
        add(out, Oracle::kSvContainment,
            "torn-down slot " + std::to_string(s) + " still holds pd id " +
                std::to_string(r.pd));
      if (r.health != nova::VmHealth::kCrashed &&
          r.health != nova::VmHealth::kQuarantined)
        add(out, Oracle::kSvContainment,
            "torn-down slot " + std::to_string(s) + " in health state '" +
                nova::vm_health_name(r.health) + "'");
    }
  }
}

// ---- (21) condemnations balance against restart/quarantine outcomes ---------
//
// Every condemnation (fatal trap or watchdog fire) ends in exactly one of:
// a completed restart, a quarantine, or a still-pending reap/backoff. The
// equation catches both a lost crash (condemned VM silently forgotten) and
// a forged restart (restart counted without a matching crash).
void InvariantSuite::check_sv_restart_ledger(std::vector<Violation>& out) const {
  const nova::Supervisor* sup = insp_.supervisor();
  if (sup == nullptr) return;
  const auto& st = sup->stats();
  u64 pending = 0;
  u64 incarnations = 0;
  for (u32 s = 0; s < sup->slot_count(); ++s) {
    const auto& r = sup->record(s);
    incarnations += r.incarnation;
    // Condemned-but-unreaped (the trap's own introspection event fires
    // before the run loop reaps) or reaped-and-backoff-running.
    if ((r.live && r.condemned) ||
        (!r.live && r.health == nova::VmHealth::kCrashed))
      ++pending;
    if (r.restarts_in_window > r.policy.max_restarts)
      add(out, Oracle::kSvRestartLedger,
          "slot " + std::to_string(s) + " records " +
              std::to_string(r.restarts_in_window) +
              " restarts in window, over the policy cap of " +
              std::to_string(r.policy.max_restarts));
  }
  if (st.crashes + st.watchdog_fires !=
      st.restarts + st.quarantines + pending)
    add(out, Oracle::kSvRestartLedger,
        "condemnations " + std::to_string(st.crashes + st.watchdog_fires) +
            " (crashes " + std::to_string(st.crashes) + " + watchdog " +
            std::to_string(st.watchdog_fires) + ") != restarts " +
            std::to_string(st.restarts) + " + quarantines " +
            std::to_string(st.quarantines) + " + pending " +
            std::to_string(pending));
  if (incarnations != st.restarts)
    add(out, Oracle::kSvRestartLedger,
        "slot incarnations sum to " + std::to_string(incarnations) +
            " but the restart stat says " + std::to_string(st.restarts));
}

// ---- (22) quarantine is terminal and fully accounted ------------------------
void InvariantSuite::check_sv_quarantine(std::vector<Violation>& out) const {
  const nova::Supervisor* sup = insp_.supervisor();
  if (sup == nullptr) return;
  u64 quarantined = 0;
  for (u32 s = 0; s < sup->slot_count(); ++s) {
    const auto& r = sup->record(s);
    if (r.health != nova::VmHealth::kQuarantined) continue;
    ++quarantined;
    if (r.live)
      add(out, Oracle::kSvQuarantine,
          "quarantined slot " + std::to_string(s) + " still backs a live VM");
  }
  if (quarantined != sup->stats().quarantines)
    add(out, Oracle::kSvQuarantine,
        std::to_string(quarantined) + " quarantined slots but the stat says " +
            std::to_string(sup->stats().quarantines));
}

}  // namespace minova::fuzz
