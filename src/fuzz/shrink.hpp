// Reproducer shrinking.
//
// Given a failing scenario, find a smaller one that still fails with the
// same oracle: bisect the step budget, deactivate VMs one at a time, prune
// whole event classes (fault injection, DPR traffic, IVC, memory traffic),
// then re-bisect. Every candidate is judged by a full deterministic re-run,
// so the output is not a guess — it is a scenario that *was just observed*
// to fail. The final reproducer is replayed twice and the two failure
// digests compared, pinning bit-identical replayability.
#pragma once

#include "fuzz/scenario.hpp"

namespace minova::fuzz {

struct ShrinkResult {
  ScenarioOptions minimal;  // smallest still-failing options found
  FuzzResult repro;         // the failure that minimal scenario produces
  u32 runs = 0;             // scenario executions spent shrinking
  /// Two back-to-back replays of `minimal` failed at the same step with the
  /// same digest.
  bool bit_identical = false;
};

/// Shrink a known-failing scenario. `failure` must be the FuzzResult of
/// running `opts` (used to anchor the oracle the shrink preserves).
ShrinkResult shrink(const ScenarioOptions& opts, const FuzzResult& failure);

}  // namespace minova::fuzz
