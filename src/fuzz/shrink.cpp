#include "fuzz/shrink.hpp"

namespace minova::fuzz {

namespace {

/// The shrink preserves the *first* oracle of the anchoring failure: a
/// candidate only counts when it still trips that oracle (failing earlier
/// or with extra violations is fine — failing with a different oracle is a
/// different bug).
bool same_oracle(const FuzzResult& a, const FuzzResult& b) {
  if (!a.failed || !b.failed) return false;
  if (a.violations.empty() || b.violations.empty()) return false;
  for (const auto& v : b.violations)
    if (v.oracle == a.violations.front().oracle) return true;
  return false;
}

}  // namespace

ShrinkResult shrink(const ScenarioOptions& opts, const FuzzResult& failure) {
  ShrinkResult out;
  // Pin seed-derived choices so pruning edits can't re-derive them.
  ScenarioOptions best = normalized(opts);
  FuzzResult best_res = failure;

  auto attempt = [&](const ScenarioOptions& cand) {
    ++out.runs;
    FuzzResult r = run_scenario(cand);
    if (same_oracle(failure, r)) {
      best = normalized(cand);
      best_res = std::move(r);
      return true;
    }
    return false;
  };

  auto bisect_steps = [&]() {
    // The failure step is a hard lower bound: the run is deterministic, so
    // any budget >= best_res.step reproduces it and any smaller budget
    // cannot. One confirming run pins the exact-budget replay.
    if (best.max_steps > best_res.step) {
      ScenarioOptions cand = best;
      cand.max_steps = best_res.step;
      attempt(cand);
    }
  };

  bisect_steps();

  // Deactivate VMs one at a time (highest slot first so surviving indices
  // keep their derivation lanes).
  for (u32 i = best.num_vms; i-- > 0;) {
    if (((best.active_mask >> i) & 1) == 0) continue;
    ScenarioOptions cand = best;
    cand.active_mask &= ~(1u << i);
    if ((cand.active_mask & ((1u << cand.num_vms) - 1)) == 0)
      continue;  // keep at least one VM
    attempt(cand);
  }

  // Prune whole event classes.
  for (int f = 0; f < 5; ++f) {
    ScenarioOptions cand = best;
    bool* gate = f == 0   ? &cand.faults
                 : f == 1 ? &cand.hwtask
                 : f == 2 ? &cand.ivc
                 : f == 3 ? &cand.mem_ops
                          : &cand.lifecycle;
    if (!*gate) continue;
    *gate = false;
    attempt(cand);
  }

  // Pruning may have moved the failure earlier: re-tighten the budget.
  bisect_steps();

  // Double replay: the acceptance property — the minimal reproducer fails
  // at the same step with the same digest, twice.
  const FuzzResult r1 = run_scenario(best);
  const FuzzResult r2 = run_scenario(best);
  out.runs += 2;
  out.bit_identical = r1.failed && r2.failed && r1.step == r2.step &&
                      r1.digest == r2.digest && same_oracle(failure, r1);
  out.minimal = best;
  out.repro = out.bit_identical ? r1 : best_res;
  return out;
}

}  // namespace minova::fuzz
