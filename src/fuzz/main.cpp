// mininova_fuzz — scenario-fuzzing driver.
//
// Campaign mode (default): run `--seeds` scenarios starting at
// `--seed-base`, checking the invariant suite after every kernel event.
// Replay mode: `--seed N` runs exactly one scenario and prints its report.
// `--shrink` reduces any failure to a minimal reproducer and verifies
// bit-identical replay; `--out DIR` writes failing reports + shrunk
// reproducers as files (CI artifact upload).
//
// Exit status: 0 when every scenario held all invariants, 1 otherwise.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "fuzz/shrink.hpp"
#include "util/log.hpp"

namespace {

using minova::fuzz::FuzzResult;
using minova::fuzz::ScenarioOptions;

struct Args {
  minova::u64 seed_base = 1000;
  minova::u32 seeds = 20;
  bool single = false;  // --seed given: replay exactly one scenario
  minova::u64 seed = 0;
  minova::u64 steps = 5000;
  minova::u64 heavy = 64;
  minova::u64 sabotage = 0;
  minova::u32 sabotage_smp = 0;
  minova::u32 sabotage_hw = 0;
  minova::u32 sabotage_sv = 0;
  bool hw_sched = false;
  bool supervisor = false;
  minova::u32 cores = 1;
  minova::u32 threads = 1;
  bool compute = false;
  bool mt_check = false;
  bool lifecycle = false;
  bool do_shrink = false;
  bool verbose = false;
  std::string out_dir;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed-base") {
      if (const char* v = val()) a.seed_base = std::strtoull(v, nullptr, 0);
    } else if (arg == "--seeds") {
      if (const char* v = val()) a.seeds = minova::u32(std::strtoul(v, nullptr, 0));
    } else if (arg == "--seed") {
      if (const char* v = val()) {
        a.seed = std::strtoull(v, nullptr, 0);
        a.single = true;
      }
    } else if (arg == "--steps") {
      if (const char* v = val()) a.steps = std::strtoull(v, nullptr, 0);
    } else if (arg == "--heavy") {
      if (const char* v = val()) a.heavy = std::strtoull(v, nullptr, 0);
    } else if (arg == "--sabotage") {
      // Corrupt scheduler state at the given step: a self-test hook that
      // demonstrates detection, replay, and shrinking on a known-bad run.
      if (const char* v = val()) a.sabotage = std::strtoull(v, nullptr, 0);
    } else if (arg == "--sabotage-smp") {
      // SMP corruption kind injected at --sabotage's step (1 = core
      // partition, 2 = shootdown accounting, 3 = core exclusivity).
      if (const char* v = val())
        a.sabotage_smp = minova::u32(std::strtoul(v, nullptr, 0));
    } else if (arg == "--sabotage-hw") {
      // PRR-scheduler corruption kind injected at --sabotage's step
      // (1 = launch ledger, 2 = save/restore record, 3 = quota breach,
      // 4 = cache validity).
      if (const char* v = val())
        a.sabotage_hw = minova::u32(std::strtoul(v, nullptr, 0));
    } else if (arg == "--sabotage-sv") {
      // Supervisor corruption kind injected at --sabotage's step
      // (1 = containment, 2 = restart ledger, 3 = quarantine). Implies
      // nothing by itself: pair with --supervisor.
      if (const char* v = val())
        a.sabotage_sv = minova::u32(std::strtoul(v, nullptr, 0));
    } else if (arg == "--supervisor") {
      // Supervisor shards: the VM supervisor watches every static chaos VM
      // (watchdog, fatal-trap containment, restart/quarantine policy) while
      // the guests deliberately crash, spin and poll their own health.
      a.supervisor = true;
    } else if (arg == "--hw-sched") {
      // PRR-scheduler shards: priorities + preemptive reclaim, bitstream
      // cache, per-VM quotas and the admission queue, with the chaos guests
      // driving setprio/quota/queued-poll traffic.
      a.hw_sched = true;
    } else if (arg == "--cores") {
      // Simulated cores: SMP shards run work stealing, IPIs and cross-core
      // TLB shootdown under the three SMP oracles.
      if (const char* v = val())
        a.cores = minova::u32(std::strtoul(v, nullptr, 0));
    } else if (arg == "--threads") {
      // Host threads executing the SMP compute batch. Never changes any
      // simulated number — see --mt-check.
      if (const char* v = val())
        a.threads = minova::u32(std::strtoul(v, nullptr, 0));
    } else if (arg == "--compute") {
      // Chaos guests mix in pure-compute burst steps so SMP runs exercise
      // the host-parallel batch path.
      a.compute = true;
    } else if (arg == "--mt-check") {
      // Differential mode: run every scenario at 1, 2 and 4 host threads
      // and fail unless all three produce the identical digest.
      a.mt_check = true;
    } else if (arg == "--lifecycle") {
      // VM create/destroy churn between time slices (lazy boot, slab
      // recycling, ASID generations) on top of the usual chaos traffic.
      a.lifecycle = true;
    } else if (arg == "--shrink") {
      a.do_shrink = true;
    } else if (arg == "--verbose" || arg == "-v") {
      a.verbose = true;
    } else if (arg == "--out") {
      if (const char* v = val()) a.out_dir = v;
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "mininova_fuzz [--seed-base N] [--seeds N] [--seed N] [--steps N]\n"
          "              [--heavy N] [--sabotage STEP] [--sabotage-smp K]\n"
          "              [--sabotage-hw K] [--sabotage-sv K] [--hw-sched]\n"
          "              [--supervisor] [--cores N] [--threads N] [--compute]\n"
          "              [--mt-check] [--lifecycle] [--shrink] [--out DIR]\n"
          "              [--verbose]");
      return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void write_artifact(const std::string& dir, const std::string& name,
                    const std::string& body) {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream f(dir + "/" + name);
  f << body;
}

int handle_failure(const Args& a, const ScenarioOptions& opts,
                   const FuzzResult& res) {
  std::fputs(res.report.c_str(), stdout);
  std::string body = res.report;
  if (a.do_shrink) {
    const auto sh = minova::fuzz::shrink(opts, res);
    std::printf(
        "shrunk after %u runs -> %s\n  step=%llu digest=%016llx "
        "bit_identical=%s\n",
        sh.runs, describe(sh.minimal).c_str(),
        (unsigned long long)sh.repro.step, (unsigned long long)sh.repro.digest,
        sh.bit_identical ? "yes" : "NO");
    body += "\nshrunk reproducer (" + std::to_string(sh.runs) +
            " runs):\n  " + describe(sh.minimal) + "\n" + sh.repro.report;
  }
  write_artifact(a.out_dir, "seed-" + std::to_string(opts.seed) + ".txt", body);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) return 2;
  if (a.verbose && a.single) {
    // Replay debugging: surface the manager's decision log alongside the
    // scenario report (grants, preemptions, retries, cache traffic).
    minova::util::set_global_log_level(minova::util::LogLevel::kDebug);
    minova::util::set_log_component_filter("hwmgr");
  }

  int rc = 0;
  const minova::u64 first = a.single ? a.seed : a.seed_base;
  const minova::u32 count = a.single ? 1 : a.seeds;
  minova::u32 failures = 0;
  for (minova::u32 i = 0; i < count; ++i) {
    ScenarioOptions opts;
    opts.seed = first + i;
    opts.max_steps = a.steps;
    opts.heavy_interval = a.heavy;
    opts.sabotage_step = a.sabotage;
    opts.sabotage_smp_kind = a.sabotage_smp;
    opts.sabotage_hw_kind = a.sabotage_hw;
    opts.sabotage_sv_kind = a.sabotage_sv;
    opts.hw_sched = a.hw_sched;
    opts.supervisor = a.supervisor;
    opts.num_cores = a.cores;
    opts.host_threads = a.threads;
    opts.compute = a.compute;
    opts.lifecycle = a.lifecycle;
    const FuzzResult res = minova::fuzz::run_scenario(opts);
    if (res.failed) {
      ++failures;
      rc = handle_failure(a, opts, res);
      continue;
    }
    if (a.verbose || a.single) std::fputs(res.report.c_str(), stdout);
    if (a.mt_check) {
      // Host-thread invariance: the same scenario must land on the same
      // digest (and step/switch counts) at every thread count.
      for (minova::u32 t : {2u, 4u}) {
        ScenarioOptions mt = opts;
        mt.host_threads = t;
        const FuzzResult r2 = minova::fuzz::run_scenario(mt);
        if (r2.failed || r2.digest != res.digest || r2.steps != res.steps) {
          std::printf(
              "MT-DIVERGENCE seed=%llu threads=%u digest=%016llx vs "
              "%016llx steps=%llu vs %llu\n",
              (unsigned long long)opts.seed, t,
              (unsigned long long)r2.digest, (unsigned long long)res.digest,
              (unsigned long long)r2.steps, (unsigned long long)res.steps);
          write_artifact(a.out_dir,
                         "mt-seed-" + std::to_string(opts.seed) + ".txt",
                         res.report + "\n" + r2.report);
          ++failures;
          rc = 1;
          break;
        }
      }
    }
  }
  std::printf("fuzz: %u scenario(s), %u failure(s)\n", count, failures);
  return rc;
}
