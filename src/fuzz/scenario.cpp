#include "fuzz/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "core/platform.hpp"
#include "hwmgr/manager.hpp"
#include "nova/kernel.hpp"
#include "workloads/chaos.hpp"

namespace minova::fuzz {

namespace {

// ---- FNV-1a ----------------------------------------------------------------

struct Digest {
  u64 h = 0xCBF2'9CE4'8422'2325ull;
  void mix(u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFFu;
      h *= 0x0000'0100'0000'01B3ull;
    }
  }
  void mix(const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x0000'0100'0000'01B3ull;
    }
    mix(s.size());
  }
};

/// Independent derivation stream keyed on (seed, lane). Used so that one
/// lane's draws (e.g. VM 3's parameters) never depend on whether another
/// lane was consulted — the property VM pruning needs.
class Derive {
 public:
  Derive(u64 seed, u64 lane) : s_(seed ^ (0x9E37'79B9'7F4A'7C15ull * (lane + 1))) {}
  u64 next() { return util::splitmix64(s_); }
  u64 below(u64 bound) { return next() % bound; }

 private:
  u64 s_;
};

// Derivation lanes (keep stable: changing a lane re-derives old seeds).
constexpr u64 kLaneGlobal = 0;
constexpr u64 kLaneFaults = 1;
constexpr u64 kLaneLifecycle = 2;  // create/destroy schedule draws
constexpr u64 kLaneVmBase = 16;    // VM i uses lane kLaneVmBase + i
constexpr u64 kLaneDynBase = 256;  // dynamic VM k uses kLaneDynBase + k

/// Ceiling on concurrently live dynamic VMs in lifecycle mode.
constexpr u32 kMaxDynamicVms = 4;

/// Fold one chaos guest's stats into an accumulator (used for both
/// lifecycle-destroyed dynamic VMs and supervisor-reaped incarnations, so
/// dead guests' work stays part of the replay contract).
void fold_chaos(workloads::ChaosStats& acc, const workloads::ChaosStats& s) {
  acc.ops += s.ops;
  acc.hypercalls += s.hypercalls;
  acc.ok += s.ok;
  acc.rejected += s.rejected;
  acc.faults += s.faults;
  acc.virqs += s.virqs;
  acc.maps += s.maps;
  acc.hw_grants += s.hw_grants;
  acc.hw_releases += s.hw_releases;
  acc.jobs_started += s.jobs_started;
  acc.ivc_sends += s.ivc_sends;
  acc.ivc_recvs += s.ivc_recvs;
  acc.hw_queued += s.hw_queued;
  acc.hw_regrants += s.hw_regrants;
  acc.hw_setprios += s.hw_setprios;
  acc.hw_quota_polls += s.hw_quota_polls;
  acc.crash_wild_jumps += s.crash_wild_jumps;
  acc.crash_undefs += s.crash_undefs;
  acc.crash_wild_stores += s.crash_wild_stores;
  acc.spin_bursts += s.spin_bursts;
  acc.health_polls += s.health_polls;
}

std::string fmt_trace_tail(Platform& platform, std::size_t max_events) {
  const auto events = platform.trace().snapshot();
  const std::size_t n = std::min(events.size(), max_events);
  std::string out;
  char line[128];
  for (std::size_t i = events.size() - n; i < events.size(); ++i) {
    const auto& e = events[i];
    std::snprintf(line, sizeof line, "  %10.2fus  %-12s a=%u b=%u\n",
                  platform.clock().cycles_to_us(e.when),
                  sim::trace_kind_name(e.kind), e.a, e.b);
    out += line;
  }
  return out;
}

}  // namespace

ScenarioOptions normalized(const ScenarioOptions& opts) {
  ScenarioOptions o = opts;
  if (o.num_vms == 0) {
    Derive d(o.seed, kLaneGlobal);
    o.num_vms = 2 + u32(d.below(7));  // 2..8
  }
  o.num_vms = std::min<u32>(o.num_vms, 8);
  if ((o.active_mask & ((1u << o.num_vms) - 1)) == 0) o.active_mask = 1;
  return o;
}

std::string describe(const ScenarioOptions& opts) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "seed=%llu steps=%llu vms=%u mask=0x%02x faults=%d hwtask=%d "
                "ivc=%d mem=%d lc=%d cores=%u threads=%u compute=%d sched=%d "
                "sv=%d heavy=%llu sabotage=%llu smpk=%u hwk=%u svk=%u",
                (unsigned long long)opts.seed,
                (unsigned long long)opts.max_steps, opts.num_vms,
                opts.active_mask, opts.faults ? 1 : 0, opts.hwtask ? 1 : 0,
                opts.ivc ? 1 : 0, opts.mem_ops ? 1 : 0, opts.lifecycle ? 1 : 0,
                opts.num_cores, opts.host_threads, opts.compute ? 1 : 0,
                opts.hw_sched ? 1 : 0, opts.supervisor ? 1 : 0,
                (unsigned long long)opts.heavy_interval,
                (unsigned long long)opts.sabotage_step, opts.sabotage_smp_kind,
                opts.sabotage_hw_kind, opts.sabotage_sv_kind);
  return buf;
}

FuzzResult run_scenario(const ScenarioOptions& in) {
  const ScenarioOptions opts = normalized(in);

  // ---- platform: fault-injection schedule derived from the seed ----
  PlatformConfig pcfg;
  if (opts.faults) {
    Derive d(opts.seed, kLaneFaults);
    pcfg.fault.enabled = true;
    pcfg.fault.seed = opts.seed ^ 0xFA17'0000ull;
    for (u32 s = 0; s < sim::kNumFaultSites; ++s)
      pcfg.fault.sites[s].probability = double(d.below(16)) / 100.0;  // 0..15%
    pcfg.fault.stall_cycles = 50'000 + d.below(4) * 50'000;
  }
  Platform platform(pcfg);
  platform.trace().set_enabled(true);

  // ---- kernel: randomized quantum so switch interleavings vary ----
  nova::KernelConfig kcfg;
  {
    Derive d(opts.seed, kLaneGlobal);
    (void)d.next();  // consumed by normalized() for num_vms
    kcfg.quantum_ms = 0.5 + double(d.below(101)) * 0.05;  // 0.5 .. 5.5 ms
  }
  // Lifecycle churn runs the kernel in lazy-boot mode: dynamic VMs
  // materialize their address space and vGIC table on first touch.
  kcfg.lazy_vm_boot = opts.lifecycle;
  // SMP shards: round-robin VM placement, work stealing, IPIs, cross-core
  // shootdown. num_cores == 1 is bit-identical to the pre-SMP kernel.
  kcfg.num_cores = opts.num_cores == 0 ? 1 : opts.num_cores;
  kcfg.host_threads = opts.host_threads == 0 ? 1 : opts.host_threads;
  if (opts.supervisor) {
    // Supervisor shards: a watchdog tight enough that a spin burst trips it
    // within a slice or two, and a crash-loop policy small enough that a
    // persistently crashing guest reaches quarantine inside max_sim_ms.
    kcfg.supervisor.enabled = true;
    kcfg.supervisor.watchdog_us = 15'000.0;
    kcfg.supervisor.max_restarts = 2;
    kcfg.supervisor.restart_window_us = 120'000.0;
    kcfg.supervisor.backoff_base_us = 800.0;
  }
  nova::Kernel kernel(platform, kcfg);

  hwmgr::ManagerService manager(kernel);
  manager.install(/*priority=*/6);  // above every guest (levels 1..5)
  if (opts.hw_sched) {
    // PRR-scheduler shards: small cache and tight quotas so preemption,
    // queueing, eviction and quota rejection all trigger within a few
    // thousand steps instead of needing pathological seeds.
    hwmgr::SchedConfig sc;
    sc.priorities = true;
    sc.cache_capacity = 2;
    sc.prefetch = true;
    sc.default_quota = 2;
    sc.queue_depth = 8;
    manager.set_sched_config(sc);
  }

  // ---- chaos VMs (parameters per (seed, vm index), active set aside) ----
  std::vector<nova::ProtectionDomain*> pds;
  std::vector<workloads::ChaosGuest*> guests;
  std::vector<workloads::ChaosConfig> cfgs;  // restart factories re-use these
  for (u32 i = 0; i < opts.num_vms; ++i) {
    if (((opts.active_mask >> i) & 1) == 0) continue;
    Derive d(opts.seed, kLaneVmBase + i);
    workloads::ChaosConfig cfg;
    cfg.seed = d.next();
    cfg.mem_ops = opts.mem_ops;
    cfg.hwtask_ops = opts.hwtask;
    cfg.ivc_ops = opts.ivc;
    cfg.sched_ops = opts.hw_sched;
    // Constant, not derived: enabling compute must not shift any Derive
    // stream (the shards compare digests across thread counts, not against
    // compute-off runs).
    cfg.compute_fraction = opts.compute ? 0.4 : 0.0;
    // Likewise constant: the supervisor lane arms fault-seeking behaviour
    // without shifting any legacy stream.
    cfg.crash_fraction = opts.supervisor ? 0.01 : 0.0;
    cfg.max_ops_per_step = 2 + u32(d.below(4));
    cfg.vtimer_period_us = 400 + u32(d.below(2400));
    const u32 ntasks = 1 + u32(d.below(3));
    for (u32 t = 0; t < ntasks; ++t)
      cfg.tasks.push_back(hwtask::TaskId(1 + d.below(9)));
    const u32 priority = 1 + u32(d.below(5));
    auto guest = std::make_unique<workloads::ChaosGuest>(cfg);
    workloads::ChaosGuest* raw = guest.get();
    auto& pd = kernel.create_vm("chaos" + std::to_string(i), priority,
                                std::move(guest));
    pds.push_back(&pd);
    guests.push_back(raw);
    cfgs.push_back(std::move(cfg));
  }

  // ---- IVC ring over the instantiated VMs ----
  std::vector<std::vector<u32>> vm_channels(pds.size());
  if (opts.ivc && pds.size() >= 2) {
    const u32 nch = pds.size() == 2 ? 1 : u32(pds.size());
    for (u32 k = 0; k < nch; ++k) {
      auto& ch = kernel.create_channel(*pds[k], *pds[(k + 1) % pds.size()]);
      guests[k]->add_ivc_channel(ch.id());
      guests[(k + 1) % pds.size()]->add_ivc_channel(ch.id());
      vm_channels[k].push_back(ch.id());
      vm_channels[(k + 1) % pds.size()].push_back(ch.id());
    }
  }

  // ---- supervisor lane: watch the static VMs (DESIGN.md §16) ----
  // Dead incarnations' stats accumulate here (harvested by the observer at
  // teardown, while the guest object is still alive).
  workloads::ChaosStats sv_acc{};
  if (opts.supervisor) {
    nova::Supervisor* sup = kernel.supervisor();
    sup->set_observer([&](u32 slot, nova::VmHealth h, nova::PdId,
                          nova::GuestOs* g) {
      if (slot >= guests.size()) return;
      if (h == nova::VmHealth::kCrashed || h == nova::VmHealth::kQuarantined) {
        if (g != nullptr)
          fold_chaos(sv_acc, static_cast<workloads::ChaosGuest*>(g)->stats());
        guests[slot] = nullptr;  // about to be torn down
      } else {
        guests[slot] = static_cast<workloads::ChaosGuest*>(g);  // restarted
      }
    });
    for (std::size_t s = 0; s < pds.size(); ++s) {
      // watch() records the VM's channel memberships, so it must run after
      // the IVC wiring above; slot index == guests index by construction.
      sup->watch(*pds[s],
                 [&, s](u32 inc) -> std::unique_ptr<nova::GuestOs> {
                   workloads::ChaosConfig c = cfgs[s];
                   c.ivc_channels = vm_channels[s];
                   // Independent stream per incarnation: a replacement must
                   // not replay the crashed instance's exact op sequence.
                   c.seed = cfgs[s].seed ^ (0x5EED'0000ull + inc);
                   return std::make_unique<workloads::ChaosGuest>(c);
                 });
    }
  }

  // ---- invariant hook ----
  nova::KernelInspector insp(kernel);
  InvariantSuite suite(insp, &manager);

  FuzzResult res;
  res.seed = opts.seed;
  bool done = false;
  u64 step = 0;

  auto record_failure = [&](std::vector<Violation> v) {
    res.failed = true;
    res.step = step;
    res.violations = std::move(v);
    // Failure digest: captured *at the violating step*, before any further
    // simulation — this is the value replays must reproduce bit-identically.
    Digest dg;
    dg.mix(opts.seed);
    dg.mix(step);
    dg.mix(platform.clock().now());
    dg.mix(insp.vm_switches());
    dg.mix(insp.hypercalls());
    for (const auto& v2 : res.violations) {
      dg.mix(u64(v2.oracle));
      dg.mix(v2.detail);
    }
    res.digest = dg.h;
    done = true;
  };

  kernel.set_introspection_hook([&](nova::KernelEvent, nova::TrapKind) {
    if (done) return;
    ++step;
    if (opts.sabotage_step != 0 && step == opts.sabotage_step) {
      if (opts.sabotage_sv_kind != 0 && kernel.supervisor() != nullptr)
        kernel.supervisor()->sabotage_for_test(opts.sabotage_sv_kind);
      else if (opts.sabotage_hw_kind != 0)
        manager.sabotage_for_test(opts.sabotage_hw_kind);
      else if (opts.sabotage_smp_kind != 0)
        kernel.smp_sabotage_for_test(opts.sabotage_smp_kind);
      else if (!pds.empty())
        pds.front()->quantum_left =
            insp.scheduler().default_quantum() * 2 + 12345;
    }
    std::vector<Violation> v = suite.check_cheap();
    const bool last = step >= opts.max_steps;
    if (step % opts.heavy_interval == 0 || last)
      for (auto& hv : suite.check_heavy()) v.push_back(std::move(hv));
    if (!v.empty()) {
      record_failure(std::move(v));
      return;
    }
    if (last) done = true;
  });

  // ---- lifecycle churn state (dynamic VMs, created/destroyed between
  // slices so no destroy ever lands mid-hypercall) ----
  struct DynVm {
    nova::PdId id = nova::kInvalidPd;
    workloads::ChaosGuest* guest = nullptr;
  };
  std::vector<DynVm> dynamic;
  Derive lifecycle_d(opts.seed, kLaneLifecycle);
  u64 dyn_created = 0, dyn_destroyed = 0;
  // Stats of destroyed dynamic guests, folded in before their PD (and the
  // attached guest) is deleted; live dynamic guests are added at the end.
  workloads::ChaosStats dyn_acc{};
  auto fold_stats = [&dyn_acc](const workloads::ChaosStats& s) {
    fold_chaos(dyn_acc, s);
  };
  auto churn = [&]() {
    const u64 roll = lifecycle_d.below(4);
    if (roll == 0 && dynamic.size() < kMaxDynamicVms) {
      Derive d(opts.seed, kLaneDynBase + dyn_created);
      workloads::ChaosConfig cfg;
      cfg.seed = d.next();
      cfg.mem_ops = opts.mem_ops;
      cfg.hwtask_ops = opts.hwtask;
      cfg.ivc_ops = false;  // dynamic VMs never join IVC channels
      cfg.sched_ops = opts.hw_sched;
      cfg.compute_fraction = opts.compute ? 0.4 : 0.0;
      cfg.max_ops_per_step = 2 + u32(d.below(4));
      cfg.vtimer_period_us = 400 + u32(d.below(2400));
      const u32 ntasks = 1 + u32(d.below(3));
      for (u32 t2 = 0; t2 < ntasks; ++t2)
        cfg.tasks.push_back(hwtask::TaskId(1 + d.below(9)));
      const u32 priority = 1 + u32(d.below(5));
      auto guest = std::make_unique<workloads::ChaosGuest>(cfg);
      workloads::ChaosGuest* raw = guest.get();
      auto& pd = kernel.create_vm("dyn" + std::to_string(dyn_created),
                                  priority, std::move(guest));
      dynamic.push_back(DynVm{pd.id(), raw});
      ++dyn_created;
    } else if (roll == 1 && !dynamic.empty()) {
      const std::size_t victim = std::size_t(lifecycle_d.below(dynamic.size()));
      fold_stats(dynamic[victim].guest->stats());
      kernel.destroy_vm(dynamic[victim].id);
      dynamic.erase(dynamic.begin() + long(victim));
      ++dyn_destroyed;
    }
  };

  // Drive in fixed simulated-time slices; the hook flags completion. Slice
  // size only affects how much tail simulation runs after `done` — the
  // failure state itself is captured inside the hook.
  const double limit_us = opts.max_sim_ms * 1000.0;
  double t = 0;
  while (!done && t < limit_us) {
    if (opts.lifecycle) churn();
    kernel.run_for_us(100.0);
    t += 100.0;
  }
  kernel.set_introspection_hook({});

  res.steps = step;
  res.vm_switches = insp.vm_switches();
  res.hypercalls = insp.hypercalls();

  if (!res.failed) {
    // Clean-run digest over end-of-run counters: replaying the same options
    // must land on exactly this value.
    Digest dg;
    dg.mix(opts.seed);
    dg.mix(step);
    dg.mix(res.vm_switches);
    dg.mix(res.hypercalls);
    dg.mix(platform.fault().injected());
    for (const auto* g : guests) {
      // A null slot is a supervisor-reaped VM awaiting restart (or
      // quarantined): its stats were folded into sv_acc at teardown.
      if (g == nullptr) continue;
      const auto& s = g->stats();
      dg.mix(s.ops);
      dg.mix(s.hypercalls);
      dg.mix(s.ok);
      dg.mix(s.rejected);
      dg.mix(s.faults);
      dg.mix(s.virqs);
      dg.mix(s.maps);
      dg.mix(s.hw_grants);
      dg.mix(s.hw_releases);
      dg.mix(s.jobs_started);
      dg.mix(s.ivc_sends);
      dg.mix(s.ivc_recvs);
      if (opts.hw_sched) {
        dg.mix(s.hw_queued);
        dg.mix(s.hw_regrants);
        dg.mix(s.hw_setprios);
        dg.mix(s.hw_quota_polls);
      }
      if (opts.supervisor) {
        dg.mix(s.crash_wild_jumps);
        dg.mix(s.crash_undefs);
        dg.mix(s.crash_wild_stores);
        dg.mix(s.spin_bursts);
        dg.mix(s.health_polls);
      }
    }
    if (opts.supervisor) {
      // Supervisor replay contract: dead incarnations' harvested totals,
      // the supervisor's own ledger, and each slot's terminal state pin
      // down the exact crash/restart/quarantine interleaving. Gated on
      // `supervisor` so every legacy digest keeps its value.
      dg.mix(sv_acc.ops);
      dg.mix(sv_acc.hypercalls);
      dg.mix(sv_acc.ok);
      dg.mix(sv_acc.rejected);
      dg.mix(sv_acc.faults);
      dg.mix(sv_acc.virqs);
      dg.mix(sv_acc.crash_wild_jumps);
      dg.mix(sv_acc.crash_undefs);
      dg.mix(sv_acc.crash_wild_stores);
      dg.mix(sv_acc.spin_bursts);
      dg.mix(sv_acc.health_polls);
      const nova::Supervisor* sup = insp.supervisor();
      const auto& st = sup->stats();
      dg.mix(st.crashes);
      dg.mix(st.watchdog_fires);
      dg.mix(st.restarts);
      dg.mix(st.quarantines);
      for (u32 s2 = 0; s2 < sup->slot_count(); ++s2) {
        const auto& r = sup->record(s2);
        dg.mix(r.incarnation);
        dg.mix(u64(r.health));
        dg.mix(r.fatal_faults);
        dg.mix(r.watchdog_fires);
      }
    }
    if (opts.lifecycle) {
      // Fold still-live dynamic guests, then mix the accumulated totals so
      // destroyed VMs' work stays part of the replay contract.
      for (const auto& dv : dynamic) fold_stats(dv.guest->stats());
      dg.mix(dyn_created);
      dg.mix(dyn_destroyed);
      dg.mix(insp.vms_destroyed());
      dg.mix(insp.asid_generation());
      dg.mix(dyn_acc.ops);
      dg.mix(dyn_acc.hypercalls);
      dg.mix(dyn_acc.ok);
      dg.mix(dyn_acc.rejected);
      dg.mix(dyn_acc.faults);
      dg.mix(dyn_acc.virqs);
      dg.mix(dyn_acc.maps);
      dg.mix(dyn_acc.hw_grants);
      dg.mix(dyn_acc.hw_releases);
      dg.mix(dyn_acc.jobs_started);
      dg.mix(dyn_acc.ivc_sends);
      dg.mix(dyn_acc.ivc_recvs);
      if (opts.hw_sched) {
        dg.mix(dyn_acc.hw_queued);
        dg.mix(dyn_acc.hw_regrants);
        dg.mix(dyn_acc.hw_setprios);
        dg.mix(dyn_acc.hw_quota_polls);
      }
    }
    if (opts.hw_sched) {
      // Scheduler replay contract: the manager-side counters pin down the
      // exact preemption/queue/cache interleaving, not just what the guests
      // observed. Gated on hw_sched so legacy digests keep their values.
      const auto& ms = manager.stats();
      dg.mix(ms.preemptions);
      dg.mix(ms.resumes);
      dg.mix(ms.enqueued);
      dg.mix(ms.wait_grants);
      dg.mix(ms.quota_rejections);
      dg.mix(ms.cache_hits);
      dg.mix(ms.cache_misses);
      dg.mix(ms.cache_evictions);
      dg.mix(ms.cache_prefetches);
    }
    if (insp.num_cores() > 1) {
      // SMP replay contract: per-core scheduling and coherence counters are
      // part of the digest, so a replay must reproduce the identical
      // interleaving, not just the same guest-visible totals. Gated on
      // cores > 1 so every pre-SMP unicore digest keeps its value.
      dg.mix(insp.num_cores());
      dg.mix(insp.tlb_epoch());
      dg.mix(insp.shootdowns_sent());
      for (u32 c = 0; c < insp.num_cores(); ++c) {
        const auto cv = insp.core(c);
        dg.mix(cv.ipis_sent());
        dg.mix(cv.ipis_received());
        dg.mix(cv.shootdowns_acked());
        dg.mix(cv.steals());
        dg.mix(cv.migrations_in());
        dg.mix(cv.irq_traps());
        dg.mix(cv.vm_switches());
      }
    }
    res.digest = dg.h;
  }

  // ---- report ----
  char head[256];
  std::snprintf(head, sizeof head,
                "[%s] %s\n  steps=%llu vm_switches=%llu hypercalls=%llu "
                "faults_injected=%llu digest=%016llx\n",
                res.failed ? "FAIL" : "ok", describe(opts).c_str(),
                (unsigned long long)res.steps,
                (unsigned long long)res.vm_switches,
                (unsigned long long)res.hypercalls,
                (unsigned long long)platform.fault().injected(),
                (unsigned long long)res.digest);
  res.report = head;
  if (res.failed) {
    res.report += "  first violation at step " + std::to_string(res.step) +
                  ":\n";
    for (const auto& v : res.violations)
      res.report +=
          std::string("    [") + oracle_name(v.oracle) + "] " + v.detail + "\n";
    res.report += "  trace tail:\n" + fmt_trace_tail(platform, 30);
  }
  return res;
}

}  // namespace minova::fuzz
