// Seeded scenario generation and execution.
//
// One scenario = one seed. Everything about the run — VM count, per-VM
// priorities and chaos-guest behaviour, the kernel's quantum, IVC wiring
// and the fault-injection schedule — derives deterministically from the
// seed, so a failing {seed, step} pair is a complete reproducer: rerunning
// the same options replays the identical instruction-for-instruction
// simulation and fails at the same step with the same digest.
//
// The shrinker relies on two structural properties of the derivation:
//   * per-VM parameters come from independent splitmix streams keyed on
//     (seed, vm index), so deactivating one VM (active_mask) does not
//     change the remaining VMs' derived behaviour;
//   * feature gates (faults / hwtask / ivc / mem_ops) prune whole event
//     classes without re-deriving anything else.
#pragma once

#include <string>
#include <vector>

#include "fuzz/invariants.hpp"

namespace minova::fuzz {

struct ScenarioOptions {
  u64 seed = 1;
  /// Trap-exit/VM-switch events to observe before declaring the run clean.
  u64 max_steps = 5000;
  /// Cadence of the scan-tier oracles (every N steps + once at the end).
  u64 heavy_interval = 64;

  // Feature gates — the shrinker clears these to prune event classes.
  bool faults = true;   // seed-derived fault-injection probabilities (PR 1)
  bool hwtask = true;   // chaos guests issue DPR task traffic
  bool ivc = true;      // wire IVC channels between the VMs
  bool mem_ops = true;  // chaos guests issue map/unmap/protect traffic
  /// VM lifecycle churn: dynamic VMs are created lazily and destroyed
  /// between time slices (kernel runs with lazy_vm_boot), exercising slab
  /// recycling, ASID generations, and the object-leak oracle. Dynamic VMs
  /// get no IVC channels — a recycled PdId must not inherit channel
  /// membership from a destroyed predecessor.
  bool lifecycle = false;

  /// 0 derives 2..8 from the seed; the shrinker pins the derived value via
  /// `normalized` before pruning.
  u32 num_vms = 0;
  /// Which of the derived VM slots to instantiate (bit i = VM i).
  u32 active_mask = 0xFF;

  /// Simulated cores the kernel multiplexes (1 = the classic unicore
  /// configuration; the kernel clamps to [1, 8]). SMP runs exercise work
  /// stealing, IPIs and cross-core TLB shootdown, and arm three extra
  /// oracles (core-partition, shootdown-complete, core-exclusivity).
  u32 num_cores = 1;

  /// Host threads executing the SMP compute batch (KernelConfig::
  /// host_threads). Pure host-speed knob: the digest of a scenario is
  /// identical at any value — that is the property the MT differential
  /// shards assert.
  u32 host_threads = 1;
  /// Give the chaos guests pure-compute burst steps (ChaosConfig::
  /// compute_fraction = 0.4) so SMP runs actually exercise the parallel
  /// batch path. Changes the RNG stream, so digests differ from
  /// compute-off runs of the same seed (but stay deterministic).
  bool compute = false;

  /// Self-test hook: at this step (1-based, 0 = never) the runner corrupts
  /// a scheduler field from inside the introspection hook, so an invariant
  /// failure is *guaranteed* at exactly that step — the mechanism behind
  /// the injected-failure replay and shrink acceptance tests.
  u64 sabotage_step = 0;
  /// PRR-scheduler shards: turn on the manager's opt-in scheduler
  /// (priorities + preemptive reclaim, bitstream cache with prefetch,
  /// per-VM quotas, admission queue) and give the chaos guests the
  /// setprio/quota/queued-poll surface. Changes the RNG streams, so digests
  /// differ from legacy runs of the same seed (but stay deterministic);
  /// off keeps every pre-scheduler digest bit-identical.
  bool hw_sched = false;
  /// When nonzero, `sabotage_step` corrupts *manager scheduler* state
  /// instead: 1 = launch ledger contradicts the PRR table, 2 = saved
  /// context diverges from the §IV.C record, 3 = a client exceeds its
  /// quota, 4 = cache entry names an unknown bitstream. Takes precedence
  /// over `sabotage_smp_kind`.
  u32 sabotage_hw_kind = 0;

  /// When nonzero, `sabotage_step` injects an *SMP* corruption instead of
  /// the scheduler-field one: 1 = double-enqueue a runnable PD on a second
  /// core (core-partition), 2 = forge shootdown ack accounting
  /// (shootdown-complete), 3 = duplicate a current PD onto another core
  /// (core-exclusivity). Requires num_cores >= 2.
  u32 sabotage_smp_kind = 0;

  /// Supervisor shards (DESIGN.md §16): run the kernel with the VM
  /// supervisor enabled, watch every static chaos VM (with a restart
  /// factory and IVC rebinding), and give the guests fault-seeking
  /// behaviour (ChaosConfig::crash_fraction) — wild jumps, undefined
  /// instructions, wild stores, no-yield spin bursts, health self-polls.
  /// Arms the three sv-* oracles. Changes the RNG streams, so digests
  /// differ from legacy runs of the same seed (but stay deterministic);
  /// off keeps every pre-supervisor digest bit-identical.
  bool supervisor = false;
  /// When nonzero, `sabotage_step` corrupts *supervisor* state instead:
  /// 1 = a live record names a PD the kernel lacks (sv-containment),
  /// 2 = forged restart ledger (sv-restart-ledger), 3 = a live record
  /// marked quarantined (sv-quarantine). Requires `supervisor`. Takes
  /// precedence over the hw/smp sabotage kinds.
  u32 sabotage_sv_kind = 0;

  /// Simulated-time ceiling: a scenario whose guests go quiet ends here
  /// even if `max_steps` events never accumulate.
  double max_sim_ms = 400.0;
};

/// Pin every seed-derived top-level choice (currently `num_vms`) so later
/// option edits (pruning) cannot re-derive them differently.
ScenarioOptions normalized(const ScenarioOptions& opts);

struct FuzzResult {
  bool failed = false;
  u64 seed = 0;
  /// 1-based index of the kernel event (trap exit / VM switch) at which the
  /// first violation was observed.
  u64 step = 0;
  std::vector<Violation> violations;
  /// FNV-1a digest: for failing runs, over the failure state captured at
  /// the violating step (bit-identical across replays of the same options);
  /// for clean runs, over the end-of-run counters.
  u64 digest = 0;

  u64 steps = 0;  // events observed
  u64 vm_switches = 0;
  u64 hypercalls = 0;
  std::string report;  // human-readable summary (failure: includes trace)
};

/// Build the scenario for `opts` and run it to completion (violation,
/// max_steps, or the simulated-time ceiling — whichever first).
FuzzResult run_scenario(const ScenarioOptions& opts);

/// One-line description of a scenario's options (reports / CI artifacts).
std::string describe(const ScenarioOptions& opts);

}  // namespace minova::fuzz
