# Empty compiler generated dependencies file for bench_prr_count.
# This may be replaced when dependencies are built.
