file(REMOVE_RECURSE
  "CMakeFiles/bench_prr_count.dir/bench_prr_count.cpp.o"
  "CMakeFiles/bench_prr_count.dir/bench_prr_count.cpp.o.d"
  "bench_prr_count"
  "bench_prr_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prr_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
