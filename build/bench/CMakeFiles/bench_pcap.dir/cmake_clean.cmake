file(REMOVE_RECURSE
  "CMakeFiles/bench_pcap.dir/bench_pcap.cpp.o"
  "CMakeFiles/bench_pcap.dir/bench_pcap.cpp.o.d"
  "bench_pcap"
  "bench_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
