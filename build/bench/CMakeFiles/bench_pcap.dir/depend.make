# Empty dependencies file for bench_pcap.
# This may be replaced when dependencies are built.
