file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pcap.dir/bench_ablation_pcap.cpp.o"
  "CMakeFiles/bench_ablation_pcap.dir/bench_ablation_pcap.cpp.o.d"
  "bench_ablation_pcap"
  "bench_ablation_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
