# Empty dependencies file for bench_ablation_pcap.
# This may be replaced when dependencies are built.
