
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_hw_vs_sw.cpp" "bench/CMakeFiles/bench_hw_vs_sw.dir/bench_hw_vs_sw.cpp.o" "gcc" "bench/CMakeFiles/bench_hw_vs_sw.dir/bench_hw_vs_sw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ucos/CMakeFiles/minova_ucos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minova_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmgr/CMakeFiles/minova_hwmgr.dir/DependInfo.cmake"
  "/root/repo/build/src/nova/CMakeFiles/minova_nova.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/minova_core.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/minova_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/minova_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/minova_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/minova_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/minova_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pl/CMakeFiles/minova_pl.dir/DependInfo.cmake"
  "/root/repo/build/src/irq/CMakeFiles/minova_irq.dir/DependInfo.cmake"
  "/root/repo/build/src/hwtask/CMakeFiles/minova_hwtask.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minova_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/minova_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
