file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_asid.dir/bench_ablation_asid.cpp.o"
  "CMakeFiles/bench_ablation_asid.dir/bench_ablation_asid.cpp.o.d"
  "bench_ablation_asid"
  "bench_ablation_asid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_asid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
