# Empty dependencies file for minova_workloads.
# This may be replaced when dependencies are built.
