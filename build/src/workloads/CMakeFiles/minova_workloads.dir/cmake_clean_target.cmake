file(REMOVE_RECURSE
  "libminova_workloads.a"
)
