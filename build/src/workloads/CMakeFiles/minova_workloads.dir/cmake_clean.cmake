file(REMOVE_RECURSE
  "CMakeFiles/minova_workloads.dir/adpcm.cpp.o"
  "CMakeFiles/minova_workloads.dir/adpcm.cpp.o.d"
  "CMakeFiles/minova_workloads.dir/gsm.cpp.o"
  "CMakeFiles/minova_workloads.dir/gsm.cpp.o.d"
  "CMakeFiles/minova_workloads.dir/softdsp.cpp.o"
  "CMakeFiles/minova_workloads.dir/softdsp.cpp.o.d"
  "CMakeFiles/minova_workloads.dir/thw.cpp.o"
  "CMakeFiles/minova_workloads.dir/thw.cpp.o.d"
  "libminova_workloads.a"
  "libminova_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
