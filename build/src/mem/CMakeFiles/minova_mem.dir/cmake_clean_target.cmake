file(REMOVE_RECURSE
  "libminova_mem.a"
)
