file(REMOVE_RECURSE
  "CMakeFiles/minova_mem.dir/bus.cpp.o"
  "CMakeFiles/minova_mem.dir/bus.cpp.o.d"
  "CMakeFiles/minova_mem.dir/phys_mem.cpp.o"
  "CMakeFiles/minova_mem.dir/phys_mem.cpp.o.d"
  "libminova_mem.a"
  "libminova_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
