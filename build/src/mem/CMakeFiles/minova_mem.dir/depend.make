# Empty dependencies file for minova_mem.
# This may be replaced when dependencies are built.
