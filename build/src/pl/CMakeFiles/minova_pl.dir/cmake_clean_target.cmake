file(REMOVE_RECURSE
  "libminova_pl.a"
)
