
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pl/pcap.cpp" "src/pl/CMakeFiles/minova_pl.dir/pcap.cpp.o" "gcc" "src/pl/CMakeFiles/minova_pl.dir/pcap.cpp.o.d"
  "/root/repo/src/pl/prr_controller.cpp" "src/pl/CMakeFiles/minova_pl.dir/prr_controller.cpp.o" "gcc" "src/pl/CMakeFiles/minova_pl.dir/prr_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwtask/CMakeFiles/minova_hwtask.dir/DependInfo.cmake"
  "/root/repo/build/src/irq/CMakeFiles/minova_irq.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/minova_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minova_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minova_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
