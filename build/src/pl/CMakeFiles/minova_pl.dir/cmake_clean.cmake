file(REMOVE_RECURSE
  "CMakeFiles/minova_pl.dir/pcap.cpp.o"
  "CMakeFiles/minova_pl.dir/pcap.cpp.o.d"
  "CMakeFiles/minova_pl.dir/prr_controller.cpp.o"
  "CMakeFiles/minova_pl.dir/prr_controller.cpp.o.d"
  "libminova_pl.a"
  "libminova_pl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_pl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
