# Empty compiler generated dependencies file for minova_pl.
# This may be replaced when dependencies are built.
