file(REMOVE_RECURSE
  "libminova_timer.a"
)
