# Empty compiler generated dependencies file for minova_timer.
# This may be replaced when dependencies are built.
