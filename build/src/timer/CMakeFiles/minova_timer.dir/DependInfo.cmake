
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timer/private_timer.cpp" "src/timer/CMakeFiles/minova_timer.dir/private_timer.cpp.o" "gcc" "src/timer/CMakeFiles/minova_timer.dir/private_timer.cpp.o.d"
  "/root/repo/src/timer/ttc.cpp" "src/timer/CMakeFiles/minova_timer.dir/ttc.cpp.o" "gcc" "src/timer/CMakeFiles/minova_timer.dir/ttc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/irq/CMakeFiles/minova_irq.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minova_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minova_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/minova_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
