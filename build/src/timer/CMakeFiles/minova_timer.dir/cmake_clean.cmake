file(REMOVE_RECURSE
  "CMakeFiles/minova_timer.dir/private_timer.cpp.o"
  "CMakeFiles/minova_timer.dir/private_timer.cpp.o.d"
  "CMakeFiles/minova_timer.dir/ttc.cpp.o"
  "CMakeFiles/minova_timer.dir/ttc.cpp.o.d"
  "libminova_timer.a"
  "libminova_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
