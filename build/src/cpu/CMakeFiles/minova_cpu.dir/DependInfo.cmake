
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/core.cpp" "src/cpu/CMakeFiles/minova_cpu.dir/core.cpp.o" "gcc" "src/cpu/CMakeFiles/minova_cpu.dir/core.cpp.o.d"
  "/root/repo/src/cpu/registers.cpp" "src/cpu/CMakeFiles/minova_cpu.dir/registers.cpp.o" "gcc" "src/cpu/CMakeFiles/minova_cpu.dir/registers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mmu/CMakeFiles/minova_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/minova_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/minova_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minova_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minova_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
