# Empty dependencies file for minova_cpu.
# This may be replaced when dependencies are built.
