file(REMOVE_RECURSE
  "CMakeFiles/minova_cpu.dir/core.cpp.o"
  "CMakeFiles/minova_cpu.dir/core.cpp.o.d"
  "CMakeFiles/minova_cpu.dir/registers.cpp.o"
  "CMakeFiles/minova_cpu.dir/registers.cpp.o.d"
  "libminova_cpu.a"
  "libminova_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
