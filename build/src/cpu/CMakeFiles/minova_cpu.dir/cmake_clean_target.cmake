file(REMOVE_RECURSE
  "libminova_cpu.a"
)
