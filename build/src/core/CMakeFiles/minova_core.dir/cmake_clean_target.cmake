file(REMOVE_RECURSE
  "libminova_core.a"
)
