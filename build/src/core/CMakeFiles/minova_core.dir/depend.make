# Empty dependencies file for minova_core.
# This may be replaced when dependencies are built.
