file(REMOVE_RECURSE
  "CMakeFiles/minova_core.dir/platform.cpp.o"
  "CMakeFiles/minova_core.dir/platform.cpp.o.d"
  "CMakeFiles/minova_core.dir/uart.cpp.o"
  "CMakeFiles/minova_core.dir/uart.cpp.o.d"
  "libminova_core.a"
  "libminova_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
