file(REMOVE_RECURSE
  "libminova_hwtask.a"
)
