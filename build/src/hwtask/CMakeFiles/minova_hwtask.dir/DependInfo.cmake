
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwtask/fft_core.cpp" "src/hwtask/CMakeFiles/minova_hwtask.dir/fft_core.cpp.o" "gcc" "src/hwtask/CMakeFiles/minova_hwtask.dir/fft_core.cpp.o.d"
  "/root/repo/src/hwtask/library.cpp" "src/hwtask/CMakeFiles/minova_hwtask.dir/library.cpp.o" "gcc" "src/hwtask/CMakeFiles/minova_hwtask.dir/library.cpp.o.d"
  "/root/repo/src/hwtask/qam_core.cpp" "src/hwtask/CMakeFiles/minova_hwtask.dir/qam_core.cpp.o" "gcc" "src/hwtask/CMakeFiles/minova_hwtask.dir/qam_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/minova_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
