# Empty compiler generated dependencies file for minova_hwtask.
# This may be replaced when dependencies are built.
