file(REMOVE_RECURSE
  "CMakeFiles/minova_hwtask.dir/fft_core.cpp.o"
  "CMakeFiles/minova_hwtask.dir/fft_core.cpp.o.d"
  "CMakeFiles/minova_hwtask.dir/library.cpp.o"
  "CMakeFiles/minova_hwtask.dir/library.cpp.o.d"
  "CMakeFiles/minova_hwtask.dir/qam_core.cpp.o"
  "CMakeFiles/minova_hwtask.dir/qam_core.cpp.o.d"
  "libminova_hwtask.a"
  "libminova_hwtask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_hwtask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
