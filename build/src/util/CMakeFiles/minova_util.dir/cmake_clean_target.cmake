file(REMOVE_RECURSE
  "libminova_util.a"
)
