file(REMOVE_RECURSE
  "CMakeFiles/minova_util.dir/log.cpp.o"
  "CMakeFiles/minova_util.dir/log.cpp.o.d"
  "CMakeFiles/minova_util.dir/table.cpp.o"
  "CMakeFiles/minova_util.dir/table.cpp.o.d"
  "libminova_util.a"
  "libminova_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
