# Empty dependencies file for minova_util.
# This may be replaced when dependencies are built.
