
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nova/ivc.cpp" "src/nova/CMakeFiles/minova_nova.dir/ivc.cpp.o" "gcc" "src/nova/CMakeFiles/minova_nova.dir/ivc.cpp.o.d"
  "/root/repo/src/nova/kernel.cpp" "src/nova/CMakeFiles/minova_nova.dir/kernel.cpp.o" "gcc" "src/nova/CMakeFiles/minova_nova.dir/kernel.cpp.o.d"
  "/root/repo/src/nova/kmem.cpp" "src/nova/CMakeFiles/minova_nova.dir/kmem.cpp.o" "gcc" "src/nova/CMakeFiles/minova_nova.dir/kmem.cpp.o.d"
  "/root/repo/src/nova/pd.cpp" "src/nova/CMakeFiles/minova_nova.dir/pd.cpp.o" "gcc" "src/nova/CMakeFiles/minova_nova.dir/pd.cpp.o.d"
  "/root/repo/src/nova/sched.cpp" "src/nova/CMakeFiles/minova_nova.dir/sched.cpp.o" "gcc" "src/nova/CMakeFiles/minova_nova.dir/sched.cpp.o.d"
  "/root/repo/src/nova/vcpu.cpp" "src/nova/CMakeFiles/minova_nova.dir/vcpu.cpp.o" "gcc" "src/nova/CMakeFiles/minova_nova.dir/vcpu.cpp.o.d"
  "/root/repo/src/nova/vgic.cpp" "src/nova/CMakeFiles/minova_nova.dir/vgic.cpp.o" "gcc" "src/nova/CMakeFiles/minova_nova.dir/vgic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/minova_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/minova_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/minova_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/irq/CMakeFiles/minova_irq.dir/DependInfo.cmake"
  "/root/repo/build/src/hwtask/CMakeFiles/minova_hwtask.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minova_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minova_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/minova_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pl/CMakeFiles/minova_pl.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/minova_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/minova_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
