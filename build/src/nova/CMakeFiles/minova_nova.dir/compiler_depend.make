# Empty compiler generated dependencies file for minova_nova.
# This may be replaced when dependencies are built.
