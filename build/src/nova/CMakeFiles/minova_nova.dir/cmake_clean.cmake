file(REMOVE_RECURSE
  "CMakeFiles/minova_nova.dir/ivc.cpp.o"
  "CMakeFiles/minova_nova.dir/ivc.cpp.o.d"
  "CMakeFiles/minova_nova.dir/kernel.cpp.o"
  "CMakeFiles/minova_nova.dir/kernel.cpp.o.d"
  "CMakeFiles/minova_nova.dir/kmem.cpp.o"
  "CMakeFiles/minova_nova.dir/kmem.cpp.o.d"
  "CMakeFiles/minova_nova.dir/pd.cpp.o"
  "CMakeFiles/minova_nova.dir/pd.cpp.o.d"
  "CMakeFiles/minova_nova.dir/sched.cpp.o"
  "CMakeFiles/minova_nova.dir/sched.cpp.o.d"
  "CMakeFiles/minova_nova.dir/vcpu.cpp.o"
  "CMakeFiles/minova_nova.dir/vcpu.cpp.o.d"
  "CMakeFiles/minova_nova.dir/vgic.cpp.o"
  "CMakeFiles/minova_nova.dir/vgic.cpp.o.d"
  "libminova_nova.a"
  "libminova_nova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_nova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
