file(REMOVE_RECURSE
  "libminova_nova.a"
)
