file(REMOVE_RECURSE
  "CMakeFiles/minova_cache.dir/cache.cpp.o"
  "CMakeFiles/minova_cache.dir/cache.cpp.o.d"
  "CMakeFiles/minova_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/minova_cache.dir/hierarchy.cpp.o.d"
  "CMakeFiles/minova_cache.dir/tlb.cpp.o"
  "CMakeFiles/minova_cache.dir/tlb.cpp.o.d"
  "libminova_cache.a"
  "libminova_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
