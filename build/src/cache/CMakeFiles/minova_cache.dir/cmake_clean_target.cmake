file(REMOVE_RECURSE
  "libminova_cache.a"
)
