# Empty compiler generated dependencies file for minova_cache.
# This may be replaced when dependencies are built.
