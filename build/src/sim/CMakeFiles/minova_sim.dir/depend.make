# Empty dependencies file for minova_sim.
# This may be replaced when dependencies are built.
