file(REMOVE_RECURSE
  "CMakeFiles/minova_sim.dir/event_queue.cpp.o"
  "CMakeFiles/minova_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/minova_sim.dir/stats.cpp.o"
  "CMakeFiles/minova_sim.dir/stats.cpp.o.d"
  "CMakeFiles/minova_sim.dir/trace.cpp.o"
  "CMakeFiles/minova_sim.dir/trace.cpp.o.d"
  "libminova_sim.a"
  "libminova_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
