file(REMOVE_RECURSE
  "libminova_sim.a"
)
