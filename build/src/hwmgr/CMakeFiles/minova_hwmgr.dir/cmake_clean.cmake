file(REMOVE_RECURSE
  "CMakeFiles/minova_hwmgr.dir/manager.cpp.o"
  "CMakeFiles/minova_hwmgr.dir/manager.cpp.o.d"
  "CMakeFiles/minova_hwmgr.dir/native_allocator.cpp.o"
  "CMakeFiles/minova_hwmgr.dir/native_allocator.cpp.o.d"
  "libminova_hwmgr.a"
  "libminova_hwmgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_hwmgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
