# Empty compiler generated dependencies file for minova_hwmgr.
# This may be replaced when dependencies are built.
