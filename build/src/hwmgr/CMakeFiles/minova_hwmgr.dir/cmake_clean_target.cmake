file(REMOVE_RECURSE
  "libminova_hwmgr.a"
)
