file(REMOVE_RECURSE
  "CMakeFiles/minova_irq.dir/gic.cpp.o"
  "CMakeFiles/minova_irq.dir/gic.cpp.o.d"
  "libminova_irq.a"
  "libminova_irq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_irq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
