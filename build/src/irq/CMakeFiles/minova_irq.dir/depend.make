# Empty dependencies file for minova_irq.
# This may be replaced when dependencies are built.
