file(REMOVE_RECURSE
  "libminova_irq.a"
)
