# CMake generated Testfile for 
# Source directory: /root/repo/src/ucos
# Build directory: /root/repo/build/src/ucos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
