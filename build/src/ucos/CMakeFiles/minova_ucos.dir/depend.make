# Empty dependencies file for minova_ucos.
# This may be replaced when dependencies are built.
