file(REMOVE_RECURSE
  "CMakeFiles/minova_ucos.dir/guest.cpp.o"
  "CMakeFiles/minova_ucos.dir/guest.cpp.o.d"
  "CMakeFiles/minova_ucos.dir/kernel.cpp.o"
  "CMakeFiles/minova_ucos.dir/kernel.cpp.o.d"
  "CMakeFiles/minova_ucos.dir/native.cpp.o"
  "CMakeFiles/minova_ucos.dir/native.cpp.o.d"
  "CMakeFiles/minova_ucos.dir/system.cpp.o"
  "CMakeFiles/minova_ucos.dir/system.cpp.o.d"
  "libminova_ucos.a"
  "libminova_ucos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_ucos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
