file(REMOVE_RECURSE
  "libminova_ucos.a"
)
