# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("mem")
subdirs("cpu")
subdirs("cache")
subdirs("irq")
subdirs("timer")
subdirs("mmu")
subdirs("pl")
subdirs("hwtask")
subdirs("nova")
subdirs("hwmgr")
subdirs("ucos")
subdirs("workloads")
subdirs("core")
