# Empty dependencies file for minova_mmu.
# This may be replaced when dependencies are built.
