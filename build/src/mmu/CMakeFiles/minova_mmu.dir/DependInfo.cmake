
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmu/descriptors.cpp" "src/mmu/CMakeFiles/minova_mmu.dir/descriptors.cpp.o" "gcc" "src/mmu/CMakeFiles/minova_mmu.dir/descriptors.cpp.o.d"
  "/root/repo/src/mmu/mmu.cpp" "src/mmu/CMakeFiles/minova_mmu.dir/mmu.cpp.o" "gcc" "src/mmu/CMakeFiles/minova_mmu.dir/mmu.cpp.o.d"
  "/root/repo/src/mmu/page_table.cpp" "src/mmu/CMakeFiles/minova_mmu.dir/page_table.cpp.o" "gcc" "src/mmu/CMakeFiles/minova_mmu.dir/page_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/minova_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/minova_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minova_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
