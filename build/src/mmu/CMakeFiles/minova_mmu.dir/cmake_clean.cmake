file(REMOVE_RECURSE
  "CMakeFiles/minova_mmu.dir/descriptors.cpp.o"
  "CMakeFiles/minova_mmu.dir/descriptors.cpp.o.d"
  "CMakeFiles/minova_mmu.dir/mmu.cpp.o"
  "CMakeFiles/minova_mmu.dir/mmu.cpp.o.d"
  "CMakeFiles/minova_mmu.dir/page_table.cpp.o"
  "CMakeFiles/minova_mmu.dir/page_table.cpp.o.d"
  "libminova_mmu.a"
  "libminova_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minova_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
