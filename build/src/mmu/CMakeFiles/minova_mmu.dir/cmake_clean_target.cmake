file(REMOVE_RECURSE
  "libminova_mmu.a"
)
