file(REMOVE_RECURSE
  "CMakeFiles/dpr_pipeline.dir/dpr_pipeline.cpp.o"
  "CMakeFiles/dpr_pipeline.dir/dpr_pipeline.cpp.o.d"
  "dpr_pipeline"
  "dpr_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
