# Empty dependencies file for dpr_pipeline.
# This may be replaced when dependencies are built.
