# Empty dependencies file for security_demo.
# This may be replaced when dependencies are built.
