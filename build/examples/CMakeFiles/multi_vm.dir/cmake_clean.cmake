file(REMOVE_RECURSE
  "CMakeFiles/multi_vm.dir/multi_vm.cpp.o"
  "CMakeFiles/multi_vm.dir/multi_vm.cpp.o.d"
  "multi_vm"
  "multi_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
