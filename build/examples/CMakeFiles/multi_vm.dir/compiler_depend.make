# Empty compiler generated dependencies file for multi_vm.
# This may be replaced when dependencies are built.
