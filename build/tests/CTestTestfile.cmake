# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/mmu_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/irq_test[1]_include.cmake")
include("/root/repo/build/tests/timer_test[1]_include.cmake")
include("/root/repo/build/tests/hwtask_test[1]_include.cmake")
include("/root/repo/build/tests/pl_test[1]_include.cmake")
include("/root/repo/build/tests/nova_test[1]_include.cmake")
include("/root/repo/build/tests/hwmgr_test[1]_include.cmake")
include("/root/repo/build/tests/ucos_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
