file(REMOVE_RECURSE
  "CMakeFiles/nova_test.dir/nova/handlers_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova/handlers_test.cpp.o.d"
  "CMakeFiles/nova_test.dir/nova/hypercall_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova/hypercall_test.cpp.o.d"
  "CMakeFiles/nova_test.dir/nova/ivc_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova/ivc_test.cpp.o.d"
  "CMakeFiles/nova_test.dir/nova/kernel_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova/kernel_test.cpp.o.d"
  "CMakeFiles/nova_test.dir/nova/kmem_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova/kmem_test.cpp.o.d"
  "CMakeFiles/nova_test.dir/nova/sched_model_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova/sched_model_test.cpp.o.d"
  "CMakeFiles/nova_test.dir/nova/sched_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova/sched_test.cpp.o.d"
  "CMakeFiles/nova_test.dir/nova/vcpu_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova/vcpu_test.cpp.o.d"
  "CMakeFiles/nova_test.dir/nova/vgic_test.cpp.o"
  "CMakeFiles/nova_test.dir/nova/vgic_test.cpp.o.d"
  "nova_test"
  "nova_test.pdb"
  "nova_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
