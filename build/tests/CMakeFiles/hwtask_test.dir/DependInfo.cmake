
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hwtask/fft_core_test.cpp" "tests/CMakeFiles/hwtask_test.dir/hwtask/fft_core_test.cpp.o" "gcc" "tests/CMakeFiles/hwtask_test.dir/hwtask/fft_core_test.cpp.o.d"
  "/root/repo/tests/hwtask/library_test.cpp" "tests/CMakeFiles/hwtask_test.dir/hwtask/library_test.cpp.o" "gcc" "tests/CMakeFiles/hwtask_test.dir/hwtask/library_test.cpp.o.d"
  "/root/repo/tests/hwtask/qam_core_test.cpp" "tests/CMakeFiles/hwtask_test.dir/hwtask/qam_core_test.cpp.o" "gcc" "tests/CMakeFiles/hwtask_test.dir/hwtask/qam_core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hwtask/CMakeFiles/minova_hwtask.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minova_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
