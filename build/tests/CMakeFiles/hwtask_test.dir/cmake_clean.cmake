file(REMOVE_RECURSE
  "CMakeFiles/hwtask_test.dir/hwtask/fft_core_test.cpp.o"
  "CMakeFiles/hwtask_test.dir/hwtask/fft_core_test.cpp.o.d"
  "CMakeFiles/hwtask_test.dir/hwtask/library_test.cpp.o"
  "CMakeFiles/hwtask_test.dir/hwtask/library_test.cpp.o.d"
  "CMakeFiles/hwtask_test.dir/hwtask/qam_core_test.cpp.o"
  "CMakeFiles/hwtask_test.dir/hwtask/qam_core_test.cpp.o.d"
  "hwtask_test"
  "hwtask_test.pdb"
  "hwtask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwtask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
