# Empty dependencies file for hwtask_test.
# This may be replaced when dependencies are built.
