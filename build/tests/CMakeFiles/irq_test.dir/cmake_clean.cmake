file(REMOVE_RECURSE
  "CMakeFiles/irq_test.dir/irq/gic_test.cpp.o"
  "CMakeFiles/irq_test.dir/irq/gic_test.cpp.o.d"
  "irq_test"
  "irq_test.pdb"
  "irq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
