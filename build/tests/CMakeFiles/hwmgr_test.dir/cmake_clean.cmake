file(REMOVE_RECURSE
  "CMakeFiles/hwmgr_test.dir/hwmgr/manager_fuzz_test.cpp.o"
  "CMakeFiles/hwmgr_test.dir/hwmgr/manager_fuzz_test.cpp.o.d"
  "CMakeFiles/hwmgr_test.dir/hwmgr/manager_test.cpp.o"
  "CMakeFiles/hwmgr_test.dir/hwmgr/manager_test.cpp.o.d"
  "CMakeFiles/hwmgr_test.dir/hwmgr/native_allocator_test.cpp.o"
  "CMakeFiles/hwmgr_test.dir/hwmgr/native_allocator_test.cpp.o.d"
  "hwmgr_test"
  "hwmgr_test.pdb"
  "hwmgr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwmgr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
