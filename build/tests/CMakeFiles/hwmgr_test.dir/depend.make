# Empty dependencies file for hwmgr_test.
# This may be replaced when dependencies are built.
