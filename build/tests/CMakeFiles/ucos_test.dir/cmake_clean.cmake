file(REMOVE_RECURSE
  "CMakeFiles/ucos_test.dir/ucos/guest_test.cpp.o"
  "CMakeFiles/ucos_test.dir/ucos/guest_test.cpp.o.d"
  "CMakeFiles/ucos_test.dir/ucos/kernel_test.cpp.o"
  "CMakeFiles/ucos_test.dir/ucos/kernel_test.cpp.o.d"
  "ucos_test"
  "ucos_test.pdb"
  "ucos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
