# Empty dependencies file for ucos_test.
# This may be replaced when dependencies are built.
